//! Device specification: fresh resistance window, quantization level count,
//! programming pulse parameters and operating temperature.

use crate::error::DeviceError;
use crate::units::Ohms;

/// Static parameters of a memristor device family.
///
/// The defaults model a filamentary RRAM cell in line with the device
/// literature the paper cites (refs. 9, 14, 17): a 10 kΩ–100 kΩ programmable
/// window discretized into 32 resistance levels, programmed by 2 V / 100 ns
/// pulses at an operating temperature of 350 K.
///
/// # Examples
///
/// ```
/// use memaging_device::DeviceSpec;
///
/// let spec = DeviceSpec::default();
/// assert_eq!(spec.levels, 32);
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Fresh lower resistance bound (LRS), ohms.
    pub r_min: f64,
    /// Fresh upper resistance bound (HRS), ohms.
    pub r_max: f64,
    /// Number of discrete resistance levels (uniform in resistance).
    pub levels: usize,
    /// Programming pulse amplitude, volts.
    pub pulse_voltage: f64,
    /// Programming pulse width, seconds.
    pub pulse_width: f64,
    /// Operating temperature, kelvin.
    pub temperature: f64,
    /// Size of one online-tuning pulse, in fresh-grid level units
    /// (sub-level: the constant-amplitude tuning pulses of paper eq. 5 move
    /// the conductance by less than one storage level).
    pub tuning_step_levels: f64,
}

impl DeviceSpec {
    /// A 64-level variant (as in the TiOx synapse of the paper's ref. 15).
    pub fn with_levels(levels: usize) -> Self {
        DeviceSpec { levels, ..DeviceSpec::default() }
    }

    /// HfOx/Hf 1T1R bipolar RRAM corner (paper ref. 9): tighter window at a
    /// lower LRS, programmed with faster/lower-voltage pulses — the
    /// high-endurance corner of the literature.
    pub fn hfox() -> Self {
        DeviceSpec {
            r_min: 5.0e3,
            r_max: 5.0e4,
            levels: 32,
            pulse_voltage: 1.5,
            pulse_width: 5.0e-8,
            temperature: 350.0,
            tuning_step_levels: 0.1,
        }
    }

    /// TaOx memristor corner (paper ref. 11): wider window at larger
    /// resistances — the low-power corner that benefits most from the
    /// voltage-divider protections that reference studies.
    pub fn taox() -> Self {
        DeviceSpec {
            r_min: 2.0e4,
            r_max: 3.0e5,
            levels: 32,
            pulse_voltage: 2.5,
            pulse_width: 1.0e-7,
            temperature: 350.0,
            tuning_step_levels: 0.1,
        }
    }

    /// TiOx synapse corner (paper ref. 15): 64 symmetric conductance levels
    /// via the hybrid pulse scheme.
    pub fn tiox() -> Self {
        DeviceSpec { levels: 64, ..DeviceSpec::default() }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidSpec`] if the resistance window is
    /// empty/non-positive, fewer than 2 levels are requested, or any pulse or
    /// temperature parameter is non-positive or non-finite.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if !(self.r_min.is_finite() && self.r_max.is_finite()) || self.r_min <= 0.0 {
            return Err(DeviceError::InvalidSpec {
                reason: format!(
                    "resistance bounds ({}, {}) must be finite and > 0",
                    self.r_min, self.r_max
                ),
            });
        }
        if self.r_max <= self.r_min {
            return Err(DeviceError::InvalidSpec {
                reason: format!("r_max {} must exceed r_min {}", self.r_max, self.r_min),
            });
        }
        if self.levels < 2 {
            return Err(DeviceError::InvalidSpec {
                reason: format!("need at least 2 levels, got {}", self.levels),
            });
        }
        for (name, v) in [
            ("pulse_voltage", self.pulse_voltage),
            ("pulse_width", self.pulse_width),
            ("temperature", self.temperature),
            ("tuning_step_levels", self.tuning_step_levels),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(DeviceError::InvalidSpec {
                    reason: format!("{name} {v} must be finite and > 0"),
                });
            }
        }
        Ok(())
    }

    /// The fresh lower bound as a typed quantity.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid; call [`DeviceSpec::validate`] first.
    pub fn r_min_ohms(&self) -> Ohms {
        Ohms::new(self.r_min).expect("validated spec")
    }

    /// The fresh upper bound as a typed quantity.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid; call [`DeviceSpec::validate`] first.
    pub fn r_max_ohms(&self) -> Ohms {
        Ohms::new(self.r_max).expect("validated spec")
    }

    /// Instantaneous programming-pulse power `V²/R` at resistance `r`, watts.
    pub fn pulse_power(&self, r: Ohms) -> f64 {
        self.pulse_voltage * self.pulse_voltage / r.value()
    }

    /// Width of one resistance level, ohms.
    pub fn level_width(&self) -> f64 {
        (self.r_max - self.r_min) / (self.levels - 1) as f64
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec {
            r_min: 1.0e4,
            r_max: 1.0e5,
            levels: 32,
            pulse_voltage: 2.0,
            pulse_width: 1.0e-7,
            temperature: 350.0,
            tuning_step_levels: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(DeviceSpec::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let d = DeviceSpec::default();
        let s = DeviceSpec { r_max: d.r_min, ..d };
        assert!(s.validate().is_err());
        let s = DeviceSpec { levels: 1, ..d };
        assert!(s.validate().is_err());
        let s = DeviceSpec { pulse_voltage: 0.0, ..d };
        assert!(s.validate().is_err());
        let s = DeviceSpec { temperature: f64::NAN, ..d };
        assert!(s.validate().is_err());
        let s = DeviceSpec { r_min: -1.0, ..d };
        assert!(s.validate().is_err());
        let s = DeviceSpec { tuning_step_levels: 0.0, ..d };
        assert!(s.validate().is_err());
    }

    #[test]
    fn pulse_power_scales_inversely_with_resistance() {
        let s = DeviceSpec::default();
        let p_lrs = s.pulse_power(Ohms::new(1e4).unwrap());
        let p_hrs = s.pulse_power(Ohms::new(1e5).unwrap());
        assert!((p_lrs / p_hrs - 10.0).abs() < 1e-9);
        // 2V across 10kΩ = 0.4 mW
        assert!((p_lrs - 4e-4).abs() < 1e-12);
    }

    #[test]
    fn level_width() {
        let s = DeviceSpec { r_min: 0.0 + 1.0, r_max: 32.0, levels: 32, ..DeviceSpec::default() };
        assert!((s.level_width() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_levels_override() {
        let s = DeviceSpec::with_levels(64);
        assert_eq!(s.levels, 64);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn literature_presets_are_valid_and_distinct() {
        for (name, s) in [
            ("hfox", DeviceSpec::hfox()),
            ("taox", DeviceSpec::taox()),
            ("tiox", DeviceSpec::tiox()),
        ] {
            assert!(s.validate().is_ok(), "{name} preset must validate");
        }
        assert!(DeviceSpec::taox().r_max > DeviceSpec::hfox().r_max);
        assert_eq!(DeviceSpec::tiox().levels, 64);
        // The TaOx corner draws less pulse power at its LRS than HfOx.
        let p_taox = DeviceSpec::taox().pulse_power(Ohms::new(DeviceSpec::taox().r_max).unwrap());
        let p_hfox = DeviceSpec::hfox().pulse_power(Ohms::new(DeviceSpec::hfox().r_max).unwrap());
        assert!(p_taox < p_hfox);
    }
}
