//! Resistance-domain quantization (paper §II-B, Fig. 3).
//!
//! Programming circuitry discretizes the resistance range into a fixed
//! number of *uniformly spaced* levels (dashed lines of Fig. 3b). Because
//! conductance is the inverse of resistance, the induced conductance levels
//! are non-uniform: dense near `g_min` (large resistance) and sparse near
//! `g_max` (Fig. 3c). That density asymmetry is one of the two reasons the
//! paper skews weights toward small values — small weights land where
//! quantization is fine-grained.

use crate::error::DeviceError;
use crate::spec::DeviceSpec;
use crate::units::{Ohms, Siemens};

/// A uniform-in-resistance quantizer over a (possibly aged) window.
///
/// # Examples
///
/// ```
/// use memaging_device::{DeviceSpec, Ohms, Quantizer};
///
/// # fn main() -> Result<(), memaging_device::DeviceError> {
/// let q = Quantizer::from_spec(&DeviceSpec::default())?;
/// assert_eq!(q.levels(), 32);
/// let r = q.quantize(Ohms::new(55_123.0)?);
/// // Quantized to within half a level width.
/// assert!((r.value() - 55_123.0).abs() <= q.level_width() / 2.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    r_min: f64,
    r_max: f64,
    levels: usize,
}

impl Quantizer {
    /// Creates a quantizer over `[r_min, r_max]` with `levels` levels.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidSpec`] if the window is empty or fewer
    /// than 2 levels are requested.
    pub fn new(r_min: Ohms, r_max: Ohms, levels: usize) -> Result<Self, DeviceError> {
        if r_max.value() <= r_min.value() {
            return Err(DeviceError::InvalidSpec {
                reason: format!("quantizer window [{}, {}] is empty", r_min.value(), r_max.value()),
            });
        }
        if levels < 2 {
            return Err(DeviceError::InvalidSpec {
                reason: format!("quantizer needs >= 2 levels, got {levels}"),
            });
        }
        Ok(Quantizer { r_min: r_min.value(), r_max: r_max.value(), levels })
    }

    /// Creates the fresh-window quantizer of a device spec.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidSpec`] if the spec is invalid.
    pub fn from_spec(spec: &DeviceSpec) -> Result<Self, DeviceError> {
        spec.validate()?;
        Quantizer::new(spec.r_min_ohms(), spec.r_max_ohms(), spec.levels)
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Spacing between adjacent resistance levels, ohms.
    pub fn level_width(&self) -> f64 {
        (self.r_max - self.r_min) / (self.levels - 1) as f64
    }

    /// The resistance of level `index` (level 0 = `r_min`, highest level =
    /// `r_max`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.levels()`.
    pub fn level_resistance(&self, index: usize) -> Ohms {
        assert!(index < self.levels, "level {index} out of range");
        Ohms::new(self.r_min + index as f64 * self.level_width())
            .expect("window validated at construction")
    }

    /// The conductance of level `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.levels()`.
    pub fn level_conductance(&self, index: usize) -> Siemens {
        self.level_resistance(index).to_siemens()
    }

    /// All level resistances, ascending.
    pub fn level_resistances(&self) -> Vec<Ohms> {
        (0..self.levels).map(|i| self.level_resistance(i)).collect()
    }

    /// All level conductances, descending (level 0 has the highest
    /// conductance).
    pub fn level_conductances(&self) -> Vec<Siemens> {
        (0..self.levels).map(|i| self.level_conductance(i)).collect()
    }

    /// The nearest level index for a target resistance (clamped into range).
    pub fn nearest_level(&self, target: Ohms) -> usize {
        let t = target.value().clamp(self.r_min, self.r_max);
        let idx = ((t - self.r_min) / self.level_width()).round() as usize;
        idx.min(self.levels - 1)
    }

    /// Quantizes a target resistance to its nearest level value.
    pub fn quantize(&self, target: Ohms) -> Ohms {
        self.level_resistance(self.nearest_level(target))
    }

    /// Quantizes a target conductance through the resistance domain — the
    /// exact pipeline of Fig. 3: conductance → resistance → nearest uniform
    /// resistance level → conductance.
    pub fn quantize_conductance(&self, target: Siemens) -> Siemens {
        self.quantize(target.to_ohms()).to_siemens()
    }

    /// Number of this quantizer's levels whose resistance lies within
    /// `[lo, hi]` — the paper's "usable levels after aging" (Fig. 4).
    pub fn levels_within(&self, lo: f64, hi: f64) -> usize {
        (0..self.levels)
            .filter(|&i| {
                let r = self.level_resistance(i).value();
                r >= lo - 1e-9 && r <= hi + 1e-9
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q8() -> Quantizer {
        Quantizer::new(Ohms::new(1e4).unwrap(), Ohms::new(8e4).unwrap(), 8).unwrap()
    }

    #[test]
    fn construction_validates() {
        let r = Ohms::new(1e4).unwrap();
        assert!(Quantizer::new(r, r, 8).is_err());
        assert!(Quantizer::new(r, Ohms::new(2e4).unwrap(), 1).is_err());
        assert!(Quantizer::from_spec(&DeviceSpec::default()).is_ok());
    }

    #[test]
    fn levels_are_uniform_in_resistance() {
        let q = q8();
        let rs = q.level_resistances();
        assert_eq!(rs.len(), 8);
        let width = q.level_width();
        for pair in rs.windows(2) {
            assert!((pair[1].value() - pair[0].value() - width).abs() < 1e-9);
        }
        assert_eq!(rs[0].value(), 1e4);
        assert_eq!(rs[7].value(), 8e4);
    }

    #[test]
    fn conductance_levels_are_dense_near_g_min() {
        // Inverse relation: gaps between conductance levels shrink toward
        // the small-conductance (large-resistance) end — Fig. 3c.
        let q = q8();
        let gs = q.level_conductances();
        let first_gap = gs[0].value() - gs[1].value(); // near g_max
        let last_gap = gs[6].value() - gs[7].value(); // near g_min
        assert!(
            first_gap > 5.0 * last_gap,
            "expected dense levels near g_min: {first_gap} vs {last_gap}"
        );
    }

    #[test]
    fn nearest_level_rounds_and_clamps() {
        let q = q8();
        assert_eq!(q.nearest_level(Ohms::new(1e4).unwrap()), 0);
        assert_eq!(q.nearest_level(Ohms::new(8e4).unwrap()), 7);
        assert_eq!(q.nearest_level(Ohms::new(1.4e4).unwrap()), 0);
        assert_eq!(q.nearest_level(Ohms::new(1.6e4).unwrap()), 1);
        // Out-of-range clamps.
        assert_eq!(q.nearest_level(Ohms::new(1.0).unwrap()), 0);
        assert_eq!(q.nearest_level(Ohms::new(1e9).unwrap()), 7);
    }

    #[test]
    fn quantize_error_is_bounded() {
        let q = Quantizer::from_spec(&DeviceSpec::default()).unwrap();
        let half = q.level_width() / 2.0;
        for k in 0..100 {
            let r = 1e4 + (k as f64 / 99.0) * 9e4;
            let out = q.quantize(Ohms::new(r).unwrap());
            assert!((out.value() - r).abs() <= half + 1e-9, "error too large at {r}");
        }
    }

    #[test]
    fn quantize_conductance_round_trips_through_resistance() {
        let q = q8();
        let g = Siemens::new(1.0 / 3.3e4).unwrap();
        let gq = q.quantize_conductance(g);
        let rq = q.quantize(Ohms::new(3.3e4).unwrap());
        assert!((gq.value() - rq.to_siemens().value()).abs() < 1e-15);
    }

    #[test]
    fn levels_within_counts_aged_window() {
        let q = q8(); // levels at 10k..80k step 10k
        assert_eq!(q.levels_within(1e4, 8e4), 8);
        assert_eq!(q.levels_within(1e4, 3.5e4), 3); // 10k, 20k, 30k
        assert_eq!(q.levels_within(2.5e4, 8e4), 6);
        assert_eq!(q.levels_within(9e4, 1e5), 0);
    }

    #[test]
    fn level_resistance_panics_out_of_range() {
        let q = q8();
        let result = std::panic::catch_unwind(|| q.level_resistance(8));
        assert!(result.is_err());
    }
}
