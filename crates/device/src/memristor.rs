//! A stateful memristor: programmable position on the fresh level grid,
//! accumulated aging stress, pulse counting.

use crate::aging::{AgedWindow, AgingModel, ArrheniusAging};
use crate::error::DeviceError;
use crate::quantizer::Quantizer;
use crate::spec::DeviceSpec;
use crate::units::{Ohms, Siemens};

/// Result of one programming operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramOutcome {
    /// Level the caller asked for (on the fresh level grid).
    pub requested_level: usize,
    /// Nearest grid level to the state actually reached after the aged
    /// window stopped further movement.
    pub achieved_level: usize,
    /// Programming pulses applied.
    pub pulses: u64,
}

impl ProgramOutcome {
    /// `true` when the aged window prevented reaching the requested level —
    /// the mismatch of paper Fig. 4 ("Level 7 requested, Level 2 reached").
    pub fn clipped(&self) -> bool {
        self.requested_level != self.achieved_level
    }
}

/// A single memristor cell with programming history and aging state.
///
/// The device's state is a *continuous position* on the fresh quantization
/// grid (position `k` ↔ resistance `r_min + k·level_width`). Write targets
/// are grid levels (the programming DAC is quantized), and each programming
/// pulse moves the position one full level; online-tuning *nudges* move it
/// by the sub-level [`DeviceSpec::tuning_step_levels`]. The reachable range
/// contracts as the aged window [`AgedWindow`] shrinks, and every pulse adds
/// power-weighted effective stress (see [`ArrheniusAging`]).
///
/// # Examples
///
/// ```
/// use memaging_device::{ArrheniusAging, DeviceSpec, Memristor};
///
/// # fn main() -> Result<(), memaging_device::DeviceError> {
/// let mut m = Memristor::new(DeviceSpec::default(), ArrheniusAging::default())?;
/// let outcome = m.program_to_level(30)?;
/// assert_eq!(outcome.achieved_level, 30);
/// assert!(m.pulse_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Memristor {
    spec: DeviceSpec,
    aging: ArrheniusAging,
    quantizer: Quantizer,
    /// Continuous position on the fresh grid, in level units.
    position: f64,
    /// Stress from this device's own programming pulses.
    own_stress: f64,
    /// Stress absorbed from array-level thermal crosstalk.
    ambient_stress: f64,
    pulse_count: u64,
}

impl Memristor {
    /// Creates a fresh device at the middle level.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidSpec`] if the spec is invalid.
    pub fn new(spec: DeviceSpec, aging: ArrheniusAging) -> Result<Self, DeviceError> {
        spec.validate()?;
        let quantizer = Quantizer::from_spec(&spec)?;
        Ok(Memristor {
            position: (spec.levels / 2) as f64,
            spec,
            aging,
            quantizer,
            own_stress: 0.0,
            ambient_stress: 0.0,
            pulse_count: 0,
        })
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The fresh-grid quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The aging model.
    pub fn aging(&self) -> &ArrheniusAging {
        &self.aging
    }

    /// The *stored* continuous position on the fresh grid, in level units —
    /// **not** clamped into the aged window (contrast [`Memristor::level`],
    /// which reads the effective, window-clamped state). Delta-programming
    /// uses this to diff a device against its next target without paying
    /// for an aged-window evaluation per cell.
    pub fn grid_position(&self) -> f64 {
        self.position
    }

    /// Accumulated effective stress, seconds (own pulses plus absorbed
    /// thermal crosstalk).
    pub fn stress(&self) -> f64 {
        self.own_stress + self.ambient_stress
    }

    /// Stress from this device's own programming pulses only.
    pub fn own_stress(&self) -> f64 {
        self.own_stress
    }

    /// Absorbs `delta` seconds of array-level thermal stress (see
    /// [`crate::ArrheniusAging::thermal_coupling`]).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or non-finite.
    pub fn absorb_ambient_stress(&mut self, delta: f64) {
        assert!(delta.is_finite() && delta >= 0.0, "ambient stress delta must be >= 0");
        self.ambient_stress += delta;
    }

    /// Total programming pulses ever applied.
    pub fn pulse_count(&self) -> u64 {
        self.pulse_count
    }

    /// The nearest grid level to the device's present state.
    pub fn level(&self) -> usize {
        (self.effective_position().round() as usize).min(self.spec.levels - 1)
    }

    /// The current aged resistance window.
    pub fn aged_window(&self) -> AgedWindow {
        self.aging.aged_window(&self.spec, self.stress())
    }

    /// The window expressed in fresh-grid position units `(lo, hi)`.
    fn position_bounds(&self) -> (f64, f64) {
        let w = self.aged_window();
        let width = self.spec.level_width();
        let lo = ((w.r_min - self.spec.r_min) / width).max(0.0);
        let hi = ((w.r_max - self.spec.r_min) / width).min((self.spec.levels - 1) as f64);
        (lo, hi.max(lo))
    }

    /// The stored position clamped into the present aged window.
    fn effective_position(&self) -> f64 {
        let (lo, hi) = self.position_bounds();
        self.position.clamp(lo, hi)
    }

    /// The device's present resistance (always inside the aged window).
    pub fn resistance(&self) -> Ohms {
        let r = self.spec.r_min + self.effective_position() * self.spec.level_width();
        Ohms::new(r).expect("aged window stays positive")
    }

    /// The device's present conductance (what the crossbar column sums).
    pub fn conductance(&self) -> Siemens {
        self.resistance().to_siemens()
    }

    /// Number of fresh levels still inside the aged window.
    pub fn usable_levels(&self) -> usize {
        let w = self.aged_window();
        self.quantizer.levels_within(w.r_min, w.r_max)
    }

    /// `true` once fewer than 2 levels remain reachable — the device can no
    /// longer represent information.
    pub fn is_worn_out(&self) -> bool {
        self.usable_levels() < 2
    }

    /// Highest fresh-grid level whose resistance is inside the aged window.
    pub fn highest_reachable_level(&self) -> usize {
        let (_, hi) = self.position_bounds();
        (hi.floor() as usize).min(self.spec.levels - 1)
    }

    /// Applies one pulse moving the position by `step_levels` grid units in
    /// `direction`, saturating against the aged window. Every pulse (even an
    /// absorbed one) stresses the device.
    fn apply_pulse(&mut self, direction: i8, step_levels: f64) -> Result<(), DeviceError> {
        if self.is_worn_out() {
            return Err(DeviceError::ProgramOnDeadDevice);
        }
        // Stress accrues at the device's *current* operating point.
        self.own_stress += self.aging.stress_increment(&self.spec, self.resistance());
        self.pulse_count += 1;
        let (lo, hi) = self.position_bounds();
        let current = self.position.clamp(lo, hi);
        self.position = match direction.signum() {
            1 => (current + step_levels).min(hi),
            -1 => (current - step_levels).max(lo),
            _ => current,
        };
        Ok(())
    }

    /// Applies one full-level programming pulse in `direction` (+1 toward
    /// higher resistance, −1 toward lower). Movement saturates against the
    /// aged window; a saturated pulse still stresses the device — failed
    /// programming attempts are exactly what accelerates late-life aging in
    /// the paper's analysis.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ProgramOnDeadDevice`] if the device is worn
    /// out.
    pub fn pulse(&mut self, direction: i8) -> Result<(), DeviceError> {
        self.apply_pulse(direction, 1.0)
    }

    /// Applies one sub-level tuning pulse (the constant-amplitude pulse of
    /// paper eq. 5) of [`DeviceSpec::tuning_step_levels`] grid units.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ProgramOnDeadDevice`] if the device is worn
    /// out.
    pub fn nudge(&mut self, direction: i8) -> Result<(), DeviceError> {
        self.apply_pulse(direction, self.spec.tuning_step_levels)
    }

    /// Forces the device into the worn-out state (window collapsed), for
    /// stuck-at-fault injection studies: forming failures and endurance
    /// outliers present exactly like a fully-aged cell.
    pub fn force_worn_out(&mut self) {
        let mut bump = self.own_stress.max(1.0e-9);
        while !self.is_worn_out() {
            self.own_stress += bump;
            bump *= 2.0;
        }
    }

    /// Drifts the position one level in `direction` **without** a
    /// programming pulse: models read-disturb relaxation (paper §I, the
    /// recoverable effect of ref. 8). No stress accrues and no pulse is
    /// counted — the whole point of drift is that reprogramming undoes it
    /// for free, while the reprogramming itself is what ages the device.
    pub fn drift_level(&mut self, direction: i8) {
        let max = (self.spec.levels - 1) as f64;
        self.position = match direction.signum() {
            1 => (self.position + 1.0).min(max),
            -1 => (self.position - 1.0).max(0.0),
            _ => self.position,
        };
    }

    /// Drifts the conductance multiplicatively by `1 + relative_delta`
    /// (read-disturb relaxation scales with the current through the
    /// filament, so it is proportional in the conductance domain). Like
    /// [`Memristor::drift_level`], this is stress-free and recoverable.
    ///
    /// Non-finite deltas are ignored; the result is clamped to the fresh
    /// grid.
    pub fn drift_conductance(&mut self, relative_delta: f64) {
        if !relative_delta.is_finite() {
            return;
        }
        let g = self.conductance().value() * (1.0 + relative_delta);
        if g <= 0.0 {
            return;
        }
        let r = 1.0 / g;
        let position = (r - self.spec.r_min) / self.spec.level_width();
        self.position = position.clamp(0.0, (self.spec.levels - 1) as f64);
    }

    /// Programs the device toward `target_level` on the fresh grid with
    /// program-and-verify pulses (one level per pulse, a final partial pulse
    /// to land on target). Movement stops early when the aged window pins
    /// the state; the outcome reports the clipping.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ProgramOnDeadDevice`] if the device is worn
    /// out before any pulse is applied.
    pub fn program_to_level(&mut self, target_level: usize) -> Result<ProgramOutcome, DeviceError> {
        if self.is_worn_out() {
            return Err(DeviceError::ProgramOnDeadDevice);
        }
        let requested = target_level.min(self.spec.levels - 1);
        let target = requested as f64;
        let mut pulses = 0u64;
        loop {
            let here = self.effective_position();
            let distance = target - here;
            if distance.abs() < 1e-9 {
                break;
            }
            let dir: i8 = if distance > 0.0 { 1 } else { -1 };
            self.apply_pulse(dir, distance.abs().min(1.0))?;
            pulses += 1;
            // Saturated against the aged window: the pulse made no progress
            // toward the target (the window may even recede under the
            // pulse's own stress — chasing it further would only burn the
            // device, so program-and-verify gives up here).
            let progressed = (target - self.effective_position()).abs() < distance.abs() - 1e-12;
            if !progressed {
                break;
            }
            if self.is_worn_out() {
                break;
            }
        }
        Ok(ProgramOutcome { requested_level: requested, achieved_level: self.level(), pulses })
    }

    /// Programs the device to the nearest level of a target resistance.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ProgramOnDeadDevice`] if the device is worn
    /// out.
    pub fn program(&mut self, target: Ohms) -> Result<ProgramOutcome, DeviceError> {
        self.program_to_level(self.quantizer.nearest_level(target))
    }

    /// Programs to the nearest level of a target conductance.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ProgramOnDeadDevice`] if the device is worn
    /// out.
    pub fn program_conductance(&mut self, target: Siemens) -> Result<ProgramOutcome, DeviceError> {
        self.program(target.to_ohms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Memristor {
        Memristor::new(DeviceSpec::default(), ArrheniusAging::default()).unwrap()
    }

    #[test]
    fn starts_fresh_at_mid_level() {
        let m = fresh();
        assert_eq!(m.level(), 16);
        assert_eq!(m.stress(), 0.0);
        assert_eq!(m.pulse_count(), 0);
        assert_eq!(m.usable_levels(), 32);
        assert!(!m.is_worn_out());
    }

    #[test]
    fn program_counts_level_steps() {
        let mut m = fresh();
        let out = m.program_to_level(20).unwrap();
        assert_eq!(out.achieved_level, 20);
        assert_eq!(out.pulses, 4);
        assert!(!out.clipped());
        assert_eq!(m.pulse_count(), 4);
        let out = m.program_to_level(20).unwrap();
        assert_eq!(out.pulses, 0, "already at target");
    }

    #[test]
    fn program_resistance_quantizes() {
        let mut m = fresh();
        let target = Ohms::new(5.5e4).unwrap();
        m.program(target).unwrap();
        let err = (m.resistance().value() - target.value()).abs();
        assert!(err <= m.quantizer().level_width() / 2.0 + 1e-9);
    }

    #[test]
    fn stress_accumulates_per_pulse() {
        let mut m = fresh();
        m.program_to_level(31).unwrap();
        let s1 = m.stress();
        assert!(s1 > 0.0);
        m.program_to_level(0).unwrap();
        assert!(m.stress() > s1);
    }

    #[test]
    fn nudge_moves_a_fraction_of_a_level() {
        let mut m = fresh();
        let r0 = m.resistance().value();
        m.nudge(1).unwrap();
        let r1 = m.resistance().value();
        let moved = (r1 - r0) / m.spec().level_width();
        assert!((moved - m.spec().tuning_step_levels).abs() < 1e-9, "nudge moved {moved} levels");
        assert_eq!(m.pulse_count(), 1, "a nudge is a pulse");
        assert!(m.stress() > 0.0, "a nudge stresses the device");
    }

    #[test]
    fn nudges_accumulate_to_levels() {
        let mut m = fresh();
        let start = m.level();
        let per_level = (1.0 / m.spec().tuning_step_levels).round() as usize;
        for _ in 0..per_level {
            m.nudge(1).unwrap();
        }
        assert_eq!(m.level(), start + 1);
    }

    #[test]
    fn low_resistance_programming_ages_faster() {
        // Cycle two devices the same number of pulses: one toggling at the
        // low-resistance end, one at the high-resistance end.
        let mut low = fresh();
        let mut high = fresh();
        low.program_to_level(0).unwrap();
        high.program_to_level(31).unwrap();
        let (s_low0, s_high0) = (low.stress(), high.stress());
        for _ in 0..200 {
            low.pulse(1).unwrap();
            low.pulse(-1).unwrap();
            high.pulse(-1).unwrap();
            high.pulse(1).unwrap();
        }
        let d_low = low.stress() - s_low0;
        let d_high = high.stress() - s_high0;
        assert!(d_low > 3.0 * d_high, "LRS cycling must stress more: {d_low} vs {d_high}");
    }

    #[test]
    fn aged_device_clips_high_targets() {
        let mut m = fresh();
        // Age heavily by hammering pulses at the low-resistance end.
        m.program_to_level(0).unwrap();
        for _ in 0..20_000 {
            if m.pulse(1).is_err() || m.pulse(-1).is_err() {
                break;
            }
        }
        assert!(m.usable_levels() < 32, "expected level loss");
        if !m.is_worn_out() {
            let out = m.program_to_level(31).unwrap();
            assert!(out.clipped(), "top level must be unreachable after aging");
            assert!(out.achieved_level < 31);
            // The achieved state equals the aged upper bound.
            let w = m.aged_window();
            assert!((m.resistance().value() - w.r_max).abs() < m.spec().level_width());
        }
    }

    #[test]
    fn worn_out_device_rejects_programming() {
        let mut m = fresh();
        m.program_to_level(0).unwrap();
        for _ in 0..2_000_000 {
            if m.pulse(1).is_err() || m.pulse(-1).is_err() {
                break;
            }
        }
        assert!(m.is_worn_out(), "device should wear out under sustained LRS cycling");
        assert!(matches!(m.program_to_level(5), Err(DeviceError::ProgramOnDeadDevice)));
        assert!(matches!(m.pulse(1), Err(DeviceError::ProgramOnDeadDevice)));
        assert!(matches!(m.nudge(1), Err(DeviceError::ProgramOnDeadDevice)));
    }

    #[test]
    fn resistance_stays_inside_aged_window() {
        let mut m = fresh();
        m.program_to_level(31).unwrap();
        // Age the device; its stored position stays high but the window
        // drops beneath it, pinning reads at the bound.
        for _ in 0..60_000 {
            if m.pulse(1).is_err() {
                break;
            }
        }
        let w = m.aged_window();
        assert!(m.resistance().value() <= w.r_max + 1e-9);
        assert!(m.resistance().value() >= w.r_min - 1e-9);
    }

    #[test]
    fn pulse_out_of_grid_is_absorbed() {
        let mut m = fresh();
        m.program_to_level(31).unwrap();
        let lvl = m.level();
        m.pulse(1).unwrap();
        assert!(m.level() <= lvl, "cannot exceed top level");
        m.program_to_level(0).unwrap();
        m.pulse(-1).unwrap();
        assert_eq!(m.level(), 0);
    }

    #[test]
    fn zero_direction_pulse_only_stresses() {
        let mut m = fresh();
        let lvl = m.level();
        m.pulse(0).unwrap();
        assert_eq!(m.level(), lvl);
        assert_eq!(m.pulse_count(), 1);
        assert!(m.stress() > 0.0);
    }

    #[test]
    fn force_worn_out_collapses_the_window() {
        let mut m = fresh();
        assert!(!m.is_worn_out());
        m.force_worn_out();
        assert!(m.is_worn_out());
        assert!(matches!(m.pulse(1), Err(DeviceError::ProgramOnDeadDevice)));
        // Idempotent.
        m.force_worn_out();
        assert!(m.is_worn_out());
    }

    #[test]
    fn drift_moves_level_without_stress() {
        let mut m = fresh();
        let lvl = m.level();
        m.drift_level(1);
        assert_eq!(m.level(), lvl + 1);
        assert_eq!(m.stress(), 0.0);
        assert_eq!(m.pulse_count(), 0);
        m.drift_level(-1);
        m.drift_level(-1);
        assert_eq!(m.level(), lvl - 1);
        m.drift_level(0);
        assert_eq!(m.level(), lvl - 1);
    }

    #[test]
    fn drift_respects_grid_bounds() {
        let mut m = fresh();
        m.program_to_level(31).unwrap();
        m.drift_level(1);
        assert_eq!(m.level(), 31);
        m.program_to_level(0).unwrap();
        m.drift_level(-1);
        assert_eq!(m.level(), 0);
    }

    #[test]
    fn grid_position_reads_raw_unclamped_state() {
        let mut m = fresh();
        assert_eq!(m.grid_position(), 16.0);
        m.program_to_level(20).unwrap();
        assert!((m.grid_position() - 20.0).abs() < 1e-9);
        // Drift moves the raw position without stress; grid_position sees it.
        m.drift_level(1);
        assert!((m.grid_position() - 21.0).abs() < 1e-9);
        // Heavy aging pins reads at the window bound while the raw position
        // stays put.
        m.program_to_level(31).unwrap();
        for _ in 0..60_000 {
            if m.pulse(1).is_err() {
                break;
            }
        }
        assert!(m.grid_position() <= 31.0);
        assert!((m.level() as f64) <= m.grid_position() + 0.5, "effective state is clamped");
    }

    #[test]
    fn conductance_is_inverse_resistance() {
        let m = fresh();
        let g = m.conductance().value();
        let r = m.resistance().value();
        assert!((g * r - 1.0).abs() < 1e-12);
    }
}
