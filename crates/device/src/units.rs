//! Physical-quantity newtypes: resistance (ohms) and conductance (siemens).
//!
//! The crossbar math constantly converts between the resistance domain
//! (where quantization levels are uniform — paper Fig. 3b) and the
//! conductance domain (where the analog VMM operates — Fig. 3c). Newtypes
//! keep the two from being confused.

use std::fmt;

use crate::error::DeviceError;

/// A resistance in ohms. Always finite and strictly positive.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Ohms(f64);

impl Ohms {
    /// Creates a resistance.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidQuantity`] unless the value is finite
    /// and `> 0`.
    pub fn new(value: f64) -> Result<Self, DeviceError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(DeviceError::InvalidQuantity {
                quantity: "resistance",
                value,
                expected: "finite and > 0 ohms",
            });
        }
        Ok(Ohms(value))
    }

    /// The raw value in ohms.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The equivalent conductance `1/R`.
    pub fn to_siemens(self) -> Siemens {
        Siemens(1.0 / self.0)
    }
}

impl fmt::Display for Ohms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} MΩ", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} kΩ", self.0 / 1e3)
        } else {
            write!(f, "{:.3} Ω", self.0)
        }
    }
}

/// A conductance in siemens. Always finite and strictly positive.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Siemens(f64);

impl Siemens {
    /// Creates a conductance.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidQuantity`] unless the value is finite
    /// and `> 0`.
    pub fn new(value: f64) -> Result<Self, DeviceError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(DeviceError::InvalidQuantity {
                quantity: "conductance",
                value,
                expected: "finite and > 0 siemens",
            });
        }
        Ok(Siemens(value))
    }

    /// The raw value in siemens.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The equivalent resistance `1/G`.
    pub fn to_ohms(self) -> Ohms {
        Ohms(1.0 / self.0)
    }
}

impl fmt::Display for Siemens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1e-6 {
            write!(f, "{:.3} nS", self.0 * 1e9)
        } else if self.0 < 1e-3 {
            write!(f, "{:.3} µS", self.0 * 1e6)
        } else {
            write!(f, "{:.3} S", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_positivity_and_finiteness() {
        assert!(Ohms::new(0.0).is_err());
        assert!(Ohms::new(-5.0).is_err());
        assert!(Ohms::new(f64::NAN).is_err());
        assert!(Ohms::new(f64::INFINITY).is_err());
        assert!(Ohms::new(1e4).is_ok());
        assert!(Siemens::new(0.0).is_err());
        assert!(Siemens::new(1e-5).is_ok());
    }

    #[test]
    fn round_trip_conversion() {
        let r = Ohms::new(20_000.0).unwrap();
        let g = r.to_siemens();
        assert!((g.value() - 5e-5).abs() < 1e-12);
        let back = g.to_ohms();
        assert!((back.value() - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn inverse_relation_flips_ordering() {
        let lo = Ohms::new(1e4).unwrap();
        let hi = Ohms::new(1e5).unwrap();
        assert!(lo < hi);
        assert!(lo.to_siemens() > hi.to_siemens());
    }

    #[test]
    fn display_uses_si_prefixes() {
        assert_eq!(Ohms::new(12_500.0).unwrap().to_string(), "12.500 kΩ");
        assert_eq!(Ohms::new(2.5e6).unwrap().to_string(), "2.500 MΩ");
        assert_eq!(Ohms::new(470.0).unwrap().to_string(), "470.000 Ω");
        assert_eq!(Siemens::new(5e-5).unwrap().to_string(), "50.000 µS");
        assert_eq!(Siemens::new(2e-8).unwrap().to_string(), "20.000 nS");
    }
}
