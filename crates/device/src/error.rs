//! Error type for device-model operations.

use std::error::Error;
use std::fmt;

/// Error produced by memristor device operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A physical quantity was outside its valid domain.
    InvalidQuantity {
        /// Name of the quantity, e.g. `"resistance"`.
        quantity: &'static str,
        /// The offending value.
        value: f64,
        /// Description of the valid domain.
        expected: &'static str,
    },
    /// A device specification was internally inconsistent.
    InvalidSpec {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The device's aged resistance window has collapsed: it can no longer
    /// hold at least two distinguishable levels.
    DeviceWornOut {
        /// Accumulated effective stress (seconds) at failure.
        stress: f64,
    },
    /// A programming target was requested on a dead device.
    ProgramOnDeadDevice,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidQuantity { quantity, value, expected } => {
                write!(f, "invalid {quantity} {value}: expected {expected}")
            }
            DeviceError::InvalidSpec { reason } => write!(f, "invalid device spec: {reason}"),
            DeviceError::DeviceWornOut { stress } => {
                write!(f, "device worn out after {stress:.3e} s effective stress")
            }
            DeviceError::ProgramOnDeadDevice => write!(f, "cannot program a worn-out device"),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e =
            DeviceError::InvalidQuantity { quantity: "resistance", value: -1.0, expected: "> 0" };
        assert!(e.to_string().contains("resistance"));
        assert!(DeviceError::ProgramOnDeadDevice.to_string().contains("worn-out"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
