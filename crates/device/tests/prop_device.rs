//! Property-based tests for device-model invariants.

use memaging_device::{AgingModel, ArrheniusAging, DeviceSpec, Memristor, Ohms, Quantizer};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = DeviceSpec> {
    (1.0e3f64..5.0e4, 2.0f64..20.0, 2usize..65).prop_map(|(r_min, ratio, levels)| DeviceSpec {
        r_min,
        r_max: r_min * ratio,
        levels,
        ..DeviceSpec::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantizer_levels_are_monotone_and_bounded(spec in arb_spec()) {
        let q = Quantizer::from_spec(&spec).unwrap();
        let rs = q.level_resistances();
        prop_assert_eq!(rs.len(), spec.levels);
        for pair in rs.windows(2) {
            prop_assert!(pair[1] > pair[0]);
        }
        prop_assert!((rs[0].value() - spec.r_min).abs() < 1e-6);
        prop_assert!((rs[rs.len() - 1].value() - spec.r_max).abs() < 1e-6);
    }

    #[test]
    fn quantize_is_idempotent(spec in arb_spec(), frac in 0.0f64..1.0) {
        let q = Quantizer::from_spec(&spec).unwrap();
        let target = Ohms::new(spec.r_min + frac * (spec.r_max - spec.r_min)).unwrap();
        let once = q.quantize(target);
        let twice = q.quantize(once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn quantize_error_bounded_by_half_level(spec in arb_spec(), frac in 0.0f64..1.0) {
        let q = Quantizer::from_spec(&spec).unwrap();
        let r = spec.r_min + frac * (spec.r_max - spec.r_min);
        let out = q.quantize(Ohms::new(r).unwrap());
        prop_assert!((out.value() - r).abs() <= q.level_width() / 2.0 + 1e-6);
    }

    #[test]
    fn aged_window_is_always_ordered(spec in arb_spec(), stress in 0.0f64..10.0) {
        let aging = ArrheniusAging::default();
        let w = aging.aged_window(&spec, stress);
        prop_assert!(w.r_max >= w.r_min);
        prop_assert!(w.r_min > 0.0);
    }

    #[test]
    fn aging_is_monotone_in_stress(spec in arb_spec(), s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let aging = ArrheniusAging::default();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let w_lo = aging.aged_window(&spec, lo);
        let w_hi = aging.aged_window(&spec, hi);
        prop_assert!(w_hi.r_max <= w_lo.r_max + 1e-9);
        prop_assert!(w_hi.r_min <= w_lo.r_min + 1e-9);
    }

    #[test]
    fn programming_never_exceeds_aged_window(
        spec in arb_spec(),
        targets in proptest::collection::vec(0usize..64, 1..12),
    ) {
        let mut m = Memristor::new(spec, ArrheniusAging::default()).unwrap();
        for t in targets {
            if m.is_worn_out() {
                break;
            }
            let _ = m.program_to_level(t % spec.levels);
            let w = m.aged_window();
            let r = m.resistance().value();
            prop_assert!(r >= w.r_min - 1e-6 && r <= w.r_max + 1e-6);
        }
    }

    #[test]
    fn pulse_count_is_bounded_by_level_distance(spec in arb_spec(), t in 0usize..64) {
        let mut m = Memristor::new(spec, ArrheniusAging::default()).unwrap();
        let target = t % spec.levels;
        let start = m.level();
        let out = m.program_to_level(target).unwrap();
        // Program-and-verify needs at least one pulse per level travelled,
        // and gives up within one extra pulse once the (possibly receding)
        // aged window pins the state.
        prop_assert!(out.pulses as usize >= start.abs_diff(out.achieved_level));
        prop_assert!(out.pulses as usize <= start.abs_diff(target) + 1);
    }

    #[test]
    fn pulse_count_matches_distance_on_wide_fresh_devices(t in 0usize..32) {
        // With the default spec, per-pulse degradation is far below one
        // level width, so the fresh count is exact.
        let spec = DeviceSpec::default();
        let mut m = Memristor::new(spec, ArrheniusAging::default()).unwrap();
        let target = t % spec.levels;
        let start = m.level();
        let out = m.program_to_level(target).unwrap();
        // Exact, except that programming to the very top level may spend one
        // verify pulse against the (slightly self-aged) window edge.
        let distance = start.abs_diff(target);
        prop_assert!(out.pulses as usize >= distance);
        prop_assert!(out.pulses as usize <= distance + 1);
        prop_assert_eq!(out.achieved_level, target);
    }

    #[test]
    fn stress_is_monotone_in_pulses(spec in arb_spec(), pulses in 1usize..200) {
        let mut m = Memristor::new(spec, ArrheniusAging::default()).unwrap();
        let mut prev = 0.0;
        for i in 0..pulses {
            if m.is_worn_out() {
                break;
            }
            m.pulse(if i % 2 == 0 { 1 } else { -1 }).unwrap();
            prop_assert!(m.stress() > prev);
            prev = m.stress();
        }
    }

    #[test]
    fn usable_levels_never_increase(spec in arb_spec()) {
        let mut m = Memristor::new(spec, ArrheniusAging::default()).unwrap();
        let mut prev = m.usable_levels();
        for i in 0..500 {
            if m.is_worn_out() {
                break;
            }
            m.pulse(if i % 2 == 0 { -1 } else { 1 }).unwrap();
            let u = m.usable_levels();
            prop_assert!(u <= prev);
            prev = u;
        }
    }
}
