//! The labeled image dataset container.

use memaging_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::DatasetError;

/// A labeled image dataset with `[N, C, H, W]` storage.
///
/// This is the common currency between the synthetic generators, the
/// software trainer and the crossbar evaluation harness. Labels are class
/// indices in `0..num_classes`.
///
/// # Examples
///
/// ```
/// use memaging_dataset::{Dataset, SyntheticSpec};
///
/// # fn main() -> Result<(), memaging_dataset::DatasetError> {
/// let spec = SyntheticSpec::small(4, 42);
/// let data = Dataset::gaussian_blobs(&spec)?;
/// assert_eq!(data.num_classes(), 4);
/// assert_eq!(data.len(), spec.classes * spec.samples_per_class);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from an `[N, C, H, W]` image tensor and labels.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 4, the counts disagree, or
    /// a label is `>= num_classes`.
    pub fn new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DatasetError> {
        if images.rank() != 4 {
            return Err(DatasetError::BadImageRank { actual: images.rank() });
        }
        if images.dims()[0] != labels.len() {
            return Err(DatasetError::SampleCountMismatch {
                images: images.dims()[0],
                labels: labels.len(),
            });
        }
        if num_classes == 0 {
            return Err(DatasetError::InvalidConfig { reason: "num_classes must be > 0".into() });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DatasetError::LabelOutOfRange { label: bad, num_classes });
        }
        Ok(Dataset { images, labels, num_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image shape as `(channels, height, width)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        let d = self.images.dims();
        (d[1], d[2], d[3])
    }

    /// The full `[N, C, H, W]` image tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The label of every sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies sample `i` out as a `[C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn image(&self, i: usize) -> Tensor {
        assert!(i < self.len(), "sample index {i} out of range");
        let (c, h, w) = self.image_shape();
        let stride = c * h * w;
        let slice = &self.images.as_slice()[i * stride..(i + 1) * stride];
        Tensor::from_vec(slice.to_vec(), [c, h, w]).expect("length matches by construction")
    }

    /// Copies samples `[start, end)` out as a flattened `[B, C*H*W]` matrix —
    /// the layout consumed by the network's forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn batch_matrix(&self, start: usize, end: usize) -> Tensor {
        assert!(start < end && end <= self.len(), "bad batch range {start}..{end}");
        let (c, h, w) = self.image_shape();
        let stride = c * h * w;
        let slice = &self.images.as_slice()[start * stride..end * stride];
        Tensor::from_vec(slice.to_vec(), [end - start, stride])
            .expect("length matches by construction")
    }

    /// Labels of samples `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn batch_labels(&self, start: usize, end: usize) -> &[usize] {
        &self.labels[start..end]
    }

    /// Iterator over `(batch_matrix, batch_labels)` chunks of at most
    /// `batch_size` samples, in order.
    pub fn batches(&self, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch_size must be > 0");
        Batches { dataset: self, batch_size, cursor: 0 }
    }

    /// Returns a copy with samples permuted by the seeded RNG.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.select(&order)
    }

    /// Returns a copy containing the samples at `indices`, in that order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let (c, h, w) = self.image_shape();
        let stride = c * h * w;
        let src = self.images.as_slice();
        let mut data = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range");
            data.extend_from_slice(&src[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images: Tensor::from_vec(data, [indices.len(), c, h, w])
                .expect("length matches by construction"),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Splits into `(train, test)` with `train_fraction` of each class's
    /// samples (stratified) going to the train set.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] unless `0 < train_fraction < 1`.
    pub fn split(&self, train_fraction: f64) -> Result<(Dataset, Dataset), DatasetError> {
        if !(0.0..1.0).contains(&train_fraction) || train_fraction == 0.0 {
            return Err(DatasetError::InvalidConfig {
                reason: format!("train_fraction {train_fraction} not in (0, 1)"),
            });
        }
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in 0..self.num_classes {
            let members: Vec<usize> =
                (0..self.len()).filter(|&i| self.labels[i] == class).collect();
            let cut = ((members.len() as f64) * train_fraction).round() as usize;
            train_idx.extend_from_slice(&members[..cut.min(members.len())]);
            test_idx.extend_from_slice(&members[cut.min(members.len())..]);
        }
        Ok((self.select(&train_idx), self.select(&test_idx)))
    }

    /// Normalizes pixels in place to zero mean and unit variance (global,
    /// not per-channel). Returns the `(mean, std)` that were removed.
    pub fn normalize(&mut self) -> (f32, f32) {
        let mean = self.images.mean();
        let centered_sq =
            self.images.as_slice().iter().map(|&x| ((x - mean) as f64).powi(2)).sum::<f64>();
        let std = ((centered_sq / self.images.len().max(1) as f64).sqrt() as f32).max(1e-6);
        let inv = 1.0 / std;
        self.images.map_in_place(|x| (x - mean) * inv);
        (mean, std)
    }

    /// Flips the label of each sample, with probability `fraction`, to a
    /// uniformly random *different* class. Label noise keeps the training
    /// loss (and therefore the data gradients) from vanishing on small
    /// synthetic tasks — mirroring the never-fully-converged regime of
    /// real CIFAR training.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]` or the dataset has fewer
    /// than 2 classes.
    pub fn corrupt_labels<R: Rng + ?Sized>(&mut self, fraction: f64, rng: &mut R) {
        assert!((0.0..=1.0).contains(&fraction), "fraction {fraction} not in [0, 1]");
        assert!(self.num_classes >= 2, "label noise needs >= 2 classes");
        for label in &mut self.labels {
            if rng.gen::<f64>() < fraction {
                let mut new = rng.gen_range(0..self.num_classes - 1);
                if new >= *label {
                    new += 1;
                }
                *label = new;
            }
        }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// Iterator over dataset mini-batches; see [`Dataset::batches`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    batch_size: usize,
    cursor: usize,
}

impl<'a> Iterator for Batches<'a> {
    type Item = (Tensor, &'a [usize]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.dataset.len() {
            return None;
        }
        let start = self.cursor;
        let end = (start + self.batch_size).min(self.dataset.len());
        self.cursor = end;
        Some((self.dataset.batch_matrix(start, end), self.dataset.batch_labels(start, end)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_fn([6, 1, 2, 2], |i| i as f32);
        Dataset::new(images, vec![0, 1, 2, 0, 1, 2], 3).unwrap()
    }

    #[test]
    fn new_validates() {
        let images = Tensor::zeros([2, 1, 2, 2]);
        assert!(Dataset::new(images.clone(), vec![0], 1).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 5], 3).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 0], 0).is_err());
        assert!(Dataset::new(Tensor::zeros([2, 4]), vec![0, 0], 1).is_err());
        assert!(Dataset::new(images, vec![0, 2], 3).is_ok());
    }

    #[test]
    fn image_extraction() {
        let d = tiny();
        let img = d.image(1);
        assert_eq!(img.dims(), &[1, 2, 2]);
        assert_eq!(img.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn batch_matrix_flattens() {
        let d = tiny();
        let b = d.batch_matrix(0, 2);
        assert_eq!(b.dims(), &[2, 4]);
        assert_eq!(b.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(d.batch_labels(0, 2), &[0, 1]);
    }

    #[test]
    fn batches_cover_all_samples() {
        let d = tiny();
        let mut total = 0;
        for (mat, labels) in d.batches(4) {
            assert_eq!(mat.dims()[0], labels.len());
            total += labels.len();
        }
        assert_eq!(total, 6);
        // Last batch is the remainder.
        let sizes: Vec<usize> = d.batches(4).map(|(_, l)| l.len()).collect();
        assert_eq!(sizes, vec![4, 2]);
    }

    #[test]
    fn select_reorders() {
        let d = tiny();
        let s = d.select(&[5, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[2, 0]);
        assert_eq!(s.image(0).as_slice(), d.image(5).as_slice());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = tiny();
        let s = d.shuffled(&mut StdRng::seed_from_u64(3));
        assert_eq!(s.len(), d.len());
        assert_eq!(s.class_counts(), d.class_counts());
        let mut a: Vec<f32> = s.images().as_slice().to_vec();
        let mut b: Vec<f32> = d.images().as_slice().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn split_is_stratified() {
        let d = tiny();
        let (train, test) = d.split(0.5).unwrap();
        assert_eq!(train.class_counts(), vec![1, 1, 1]);
        assert_eq!(test.class_counts(), vec![1, 1, 1]);
        assert!(d.split(0.0).is_err());
        assert!(d.split(1.0).is_err());
    }

    #[test]
    fn normalize_zero_mean_unit_std() {
        let mut d = tiny();
        d.normalize();
        let mean = d.images().mean();
        assert!(mean.abs() < 1e-5);
        let var = d.images().norm_sq() / d.images().len() as f32;
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn class_counts() {
        assert_eq!(tiny().class_counts(), vec![2, 2, 2]);
    }

    #[test]
    fn corrupt_labels_flips_roughly_the_fraction() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let images = Tensor::zeros([1000, 1, 1, 1]);
        let mut d = Dataset::new(images, vec![0; 1000], 4).unwrap();
        d.corrupt_labels(0.2, &mut StdRng::seed_from_u64(1));
        let flipped = d.labels().iter().filter(|&&l| l != 0).count();
        assert!((120..280).contains(&flipped), "flipped {flipped} of 1000 at 20%");
        // All labels stay valid.
        assert!(d.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn corrupt_labels_zero_fraction_is_identity() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut d = tiny();
        let before = d.labels().to_vec();
        d.corrupt_labels(0.0, &mut StdRng::seed_from_u64(2));
        assert_eq!(d.labels(), &before[..]);
    }

    #[test]
    fn corrupt_labels_never_keeps_the_flipped_label() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let images = Tensor::zeros([500, 1, 1, 1]);
        let mut d = Dataset::new(images, vec![1; 500], 3).unwrap();
        d.corrupt_labels(1.0, &mut StdRng::seed_from_u64(3));
        assert!(d.labels().iter().all(|&l| l != 1), "fraction 1.0 must flip every label");
    }
}
