//! # memaging-dataset
//!
//! Synthetic, deterministic image datasets for the *memaging* workspace —
//! the stand-ins for CIFAR-10 and CIFAR-100 used by the DATE 2019 paper
//! "Aging-aware Lifetime Enhancement for Memristor-based Neuromorphic
//! Computing".
//!
//! The real CIFAR sets cannot ship with this repository and full-scale
//! training is out of budget for an aging *simulation* study, so this crate
//! generates multi-class image datasets with intra-class variation and
//! spatial structure at CIFAR-like shapes (see `DESIGN.md` §2 for why that
//! preserves the paper's measured behaviour). Everything is seeded: the same
//! [`SyntheticSpec`] always yields the same [`Dataset`].
//!
//! # Example
//!
//! ```
//! use memaging_dataset::{Dataset, SyntheticSpec};
//!
//! # fn main() -> Result<(), memaging_dataset::DatasetError> {
//! let spec = SyntheticSpec::small(10, 42); // 10-class Cifar10 stand-in
//! let mut data = Dataset::gaussian_blobs(&spec)?;
//! data.normalize();
//! let (train, test) = data.split(0.8)?;
//! for (batch, labels) in train.batches(32) {
//!     assert_eq!(batch.dims()[0], labels.len());
//! }
//! # let _ = test;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod error;
mod synthetic;

pub use dataset::{Batches, Dataset};
pub use error::DatasetError;
pub use synthetic::SyntheticSpec;
