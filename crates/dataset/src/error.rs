//! Error type for dataset construction and manipulation.

use std::error::Error;
use std::fmt;

/// Error produced by dataset operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The image tensor and label list disagree on sample count.
    SampleCountMismatch {
        /// Number of images.
        images: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label exceeds the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared number of classes.
        num_classes: usize,
    },
    /// The image tensor is not rank 4 (`[N, C, H, W]`).
    BadImageRank {
        /// The actual rank encountered.
        actual: usize,
    },
    /// A configuration parameter was invalid (zero classes, empty split, ...).
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::SampleCountMismatch { images, labels } => {
                write!(f, "sample count mismatch: {images} images but {labels} labels")
            }
            DatasetError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            DatasetError::BadImageRank { actual } => {
                write!(f, "image tensor must be rank 4 [N, C, H, W], got rank {actual}")
            }
            DatasetError::InvalidConfig { reason } => write!(f, "invalid dataset config: {reason}"),
        }
    }
}

impl Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DatasetError::SampleCountMismatch { images: 3, labels: 4 };
        assert!(e.to_string().contains("3 images"));
        let e = DatasetError::LabelOutOfRange { label: 10, num_classes: 10 };
        assert!(e.to_string().contains("label 10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}
