//! Synthetic image dataset generators.
//!
//! CIFAR-10/CIFAR-100 (used by the paper) are neither redistributable inside
//! this repository nor trainable at full scale on the simulation budget, so
//! the workspace substitutes deterministic synthetic datasets that exercise
//! identical code paths: multi-class images with intra-class variation and
//! inter-class structure, at CIFAR-like tensor shapes. See `DESIGN.md` §2 for
//! the substitution argument.
//!
//! Two generators are provided:
//!
//! * [`Dataset::gaussian_blobs`] — every class has a smooth random prototype
//!   image; samples are the prototype plus i.i.d. gaussian pixel noise. Class
//!   difficulty is controlled by `noise_std`.
//! * [`Dataset::shapes`] — every class renders a parametric geometric pattern
//!   (oriented bars, crosses, rings, checkers) plus noise, giving spatial
//!   structure that convolution layers can exploit.

use memaging_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::error::DatasetError;

/// Configuration for the synthetic dataset generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image channels (1 = grayscale, 3 = CIFAR-like RGB).
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Standard deviation of additive gaussian pixel noise.
    pub noise_std: f32,
    /// RNG seed; equal specs generate identical datasets.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A CIFAR-10-like spec: `classes`=10, 3×32×32 (heavyweight; prefer
    /// [`SyntheticSpec::small`] in tests).
    pub fn cifar_like(classes: usize, samples_per_class: usize, seed: u64) -> Self {
        SyntheticSpec {
            classes,
            channels: 3,
            height: 32,
            width: 32,
            samples_per_class,
            noise_std: 0.3,
            seed,
        }
    }

    /// A small, fast spec (1×12×12, 40 samples/class) for tests and scaled
    /// experiments.
    pub fn small(classes: usize, seed: u64) -> Self {
        SyntheticSpec {
            classes,
            channels: 1,
            height: 12,
            width: 12,
            samples_per_class: 40,
            noise_std: 0.25,
            seed,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for any zero-valued dimension
    /// or a negative/non-finite noise level.
    pub fn validate(&self) -> Result<(), DatasetError> {
        if self.classes == 0
            || self.channels == 0
            || self.height == 0
            || self.width == 0
            || self.samples_per_class == 0
        {
            return Err(DatasetError::InvalidConfig {
                reason: "all spec dimensions must be nonzero".into(),
            });
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err(DatasetError::InvalidConfig {
                reason: format!("noise_std {} must be finite and >= 0", self.noise_std),
            });
        }
        Ok(())
    }

    fn pixels(&self) -> usize {
        self.channels * self.height * self.width
    }
}

impl Dataset {
    /// Generates a gaussian-blob dataset: one smooth random prototype per
    /// class, plus per-sample gaussian noise.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the spec is invalid.
    pub fn gaussian_blobs(spec: &SyntheticSpec) -> Result<Dataset, DatasetError> {
        spec.validate()?;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let pixels = spec.pixels();
        // Smooth prototypes: random low-frequency sinusoid mixtures so
        // nearby pixels correlate, as in natural images.
        let mut prototypes = Vec::with_capacity(spec.classes);
        for _ in 0..spec.classes {
            let fx: f64 = rng.gen_range(0.5..3.0);
            let fy: f64 = rng.gen_range(0.5..3.0);
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let amp: f32 = rng.gen_range(0.6..1.2);
            let chan_shift: f64 = rng.gen_range(0.0..1.0);
            let mut proto = vec![0.0f32; pixels];
            for c in 0..spec.channels {
                for y in 0..spec.height {
                    for x in 0..spec.width {
                        let u = x as f64 / spec.width as f64;
                        let v = y as f64 / spec.height as f64;
                        let val = ((fx * std::f64::consts::TAU * u
                            + fy * std::f64::consts::TAU * v
                            + phase
                            + c as f64 * chan_shift)
                            .sin()) as f32;
                        proto[(c * spec.height + y) * spec.width + x] = amp * val;
                    }
                }
            }
            prototypes.push(proto);
        }
        let n = spec.classes * spec.samples_per_class;
        let mut data = Vec::with_capacity(n * pixels);
        let mut labels = Vec::with_capacity(n);
        for (class, proto) in prototypes.iter().enumerate() {
            for _ in 0..spec.samples_per_class {
                for &p in proto {
                    data.push(p + spec.noise_std * init::standard_normal(&mut rng));
                }
                labels.push(class);
            }
        }
        let images = Tensor::from_vec(data, [n, spec.channels, spec.height, spec.width])
            .expect("length matches by construction");
        Dataset::new(images, labels, spec.classes)
    }

    /// Generates a shapes dataset: each class renders a parametric geometric
    /// pattern (bar / cross / ring / checker family selected by class index)
    /// with jittered position, plus gaussian noise.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the spec is invalid.
    pub fn shapes(spec: &SyntheticSpec) -> Result<Dataset, DatasetError> {
        spec.validate()?;
        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(0x5AFE));
        let pixels = spec.pixels();
        let n = spec.classes * spec.samples_per_class;
        let mut data = Vec::with_capacity(n * pixels);
        let mut labels = Vec::with_capacity(n);
        for class in 0..spec.classes {
            for _ in 0..spec.samples_per_class {
                let jx: f64 = rng.gen_range(-1.5..1.5);
                let jy: f64 = rng.gen_range(-1.5..1.5);
                for c in 0..spec.channels {
                    for y in 0..spec.height {
                        for x in 0..spec.width {
                            let base = render_shape(
                                class,
                                spec.classes,
                                c,
                                x as f64 + jx,
                                y as f64 + jy,
                                spec.width as f64,
                                spec.height as f64,
                            );
                            data.push(base + spec.noise_std * init::standard_normal(&mut rng));
                        }
                    }
                }
                labels.push(class);
            }
        }
        let images = Tensor::from_vec(data, [n, spec.channels, spec.height, spec.width])
            .expect("length matches by construction");
        Dataset::new(images, labels, spec.classes)
    }
}

/// Renders the noiseless intensity of class `class` at pixel `(x, y)`.
///
/// Classes cycle through four shape families; within a family the class index
/// additionally modulates orientation/scale so that arbitrarily many classes
/// stay distinguishable (needed for the 100-class Cifar100 stand-in).
fn render_shape(
    class: usize,
    num_classes: usize,
    channel: usize,
    x: f64,
    y: f64,
    w: f64,
    h: f64,
) -> f32 {
    let cx = w / 2.0;
    let cy = h / 2.0;
    let dx = x - cx;
    let dy = y - cy;
    let family = class % 4;
    let variant = (class / 4) as f64;
    let chan = channel as f64 * 0.35;
    let strength: f64 = match family {
        // Oriented bar: angle set by variant.
        0 => {
            let angle = std::f64::consts::PI * (variant + 1.0) / (num_classes as f64 / 4.0 + 1.0);
            let d = (dx * angle.cos() + dy * angle.sin()).abs();
            if d < 1.5 {
                1.0
            } else {
                -0.3
            }
        }
        // Cross with variant-dependent arm width.
        1 => {
            let arm = 1.0 + variant * 0.5;
            if dx.abs() < arm || dy.abs() < arm {
                1.0
            } else {
                -0.3
            }
        }
        // Ring with variant-dependent radius.
        2 => {
            let r = (dx * dx + dy * dy).sqrt();
            let target = 2.0 + variant + chan;
            if (r - target).abs() < 1.2 {
                1.0
            } else {
                -0.3
            }
        }
        // Checkerboard with variant-dependent period.
        _ => {
            let period = 2.0 + variant;
            let cell = ((x / period).floor() + (y / period).floor()) as i64;
            if cell % 2 == 0 {
                0.8
            } else {
                -0.8
            }
        }
    };
    (strength + chan * 0.1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        let mut s = SyntheticSpec::small(3, 1);
        assert!(s.validate().is_ok());
        s.classes = 0;
        assert!(s.validate().is_err());
        let mut s = SyntheticSpec::small(3, 1);
        s.noise_std = -1.0;
        assert!(s.validate().is_err());
        let mut s = SyntheticSpec::small(3, 1);
        s.noise_std = f32::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn gaussian_blobs_shape_and_balance() {
        let spec = SyntheticSpec::small(5, 11);
        let d = Dataset::gaussian_blobs(&spec).unwrap();
        assert_eq!(d.len(), 200);
        assert_eq!(d.num_classes(), 5);
        assert_eq!(d.image_shape(), (1, 12, 12));
        assert_eq!(d.class_counts(), vec![40; 5]);
    }

    #[test]
    fn generators_are_deterministic() {
        let spec = SyntheticSpec::small(3, 99);
        let a = Dataset::gaussian_blobs(&spec).unwrap();
        let b = Dataset::gaussian_blobs(&spec).unwrap();
        assert_eq!(a, b);
        let c = Dataset::shapes(&spec).unwrap();
        let d = Dataset::shapes(&spec).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::gaussian_blobs(&SyntheticSpec::small(3, 1)).unwrap();
        let b = Dataset::gaussian_blobs(&SyntheticSpec::small(3, 2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // Sanity: with moderate noise, per-class means must be closer to
        // their own samples than to other classes' means on average.
        let spec = SyntheticSpec::small(4, 7);
        let d = Dataset::gaussian_blobs(&spec).unwrap();
        let (c, h, w) = d.image_shape();
        let pix = c * h * w;
        let mut means = vec![vec![0.0f64; pix]; 4];
        let counts = d.class_counts();
        for i in 0..d.len() {
            let img = d.image(i);
            let l = d.labels()[i];
            for (m, &v) in means[l].iter_mut().zip(img.as_slice()) {
                *m += v as f64;
            }
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= n as f64;
            }
        }
        // Nearest-mean classification accuracy should beat chance easily.
        let mut correct = 0;
        for i in 0..d.len() {
            let img = d.image(i);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (k, m) in means.iter().enumerate() {
                let dist: f64 =
                    img.as_slice().iter().zip(m).map(|(&a, &b)| (a as f64 - b).powi(2)).sum();
                if dist < best_d {
                    best_d = dist;
                    best = k;
                }
            }
            if best == d.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.9, "nearest-prototype accuracy too low: {acc}");
    }

    #[test]
    fn shapes_dataset_has_spatial_structure() {
        let spec = SyntheticSpec {
            classes: 4,
            channels: 1,
            height: 12,
            width: 12,
            samples_per_class: 5,
            noise_std: 0.0,
            seed: 5,
        };
        let d = Dataset::shapes(&spec).unwrap();
        // Noiseless samples of different classes must differ.
        let a = d.image(0);
        let b = d.image(5 /* first sample of class 1 */);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn hundred_class_generation_works() {
        let mut spec = SyntheticSpec::small(100, 123);
        spec.samples_per_class = 2;
        let d = Dataset::shapes(&spec).unwrap();
        assert_eq!(d.num_classes(), 100);
        assert_eq!(d.len(), 200);
        assert!(d.images().all_finite());
    }
}
