//! Property-based tests for dataset invariants: splits partition, batches
//! cover, generators stay deterministic and label-valid.

use memaging_dataset::{Dataset, SyntheticSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec(classes: usize, samples: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        classes,
        channels: 1,
        height: 6,
        width: 6,
        samples_per_class: samples,
        noise_std: 0.2,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_partitions_every_sample(
        classes in 2usize..6,
        samples in 4usize..12,
        frac in 0.2f64..0.8,
        seed in 0u64..500,
    ) {
        let d = Dataset::gaussian_blobs(&spec(classes, samples, seed)).unwrap();
        let (a, b) = d.split(frac).unwrap();
        prop_assert_eq!(a.len() + b.len(), d.len());
        // Stratified: every class appears in the train split.
        prop_assert!(a.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn batches_cover_exactly_once(
        classes in 2usize..5,
        samples in 3usize..10,
        batch in 1usize..16,
        seed in 0u64..500,
    ) {
        let d = Dataset::shapes(&spec(classes, samples, seed)).unwrap();
        let mut total = 0usize;
        for (mat, labels) in d.batches(batch) {
            prop_assert_eq!(mat.dims()[0], labels.len());
            prop_assert!(labels.len() <= batch);
            total += labels.len();
        }
        prop_assert_eq!(total, d.len());
    }

    #[test]
    fn labels_always_in_range(classes in 2usize..8, seed in 0u64..500) {
        let d = Dataset::gaussian_blobs(&spec(classes, 5, seed)).unwrap();
        prop_assert!(d.labels().iter().all(|&l| l < classes));
    }

    #[test]
    fn shuffle_then_select_preserves_pairs(seed in 0u64..500) {
        // After shuffling, each (image, label) pair must still co-travel.
        let d = Dataset::gaussian_blobs(&spec(3, 6, seed)).unwrap();
        let s = d.shuffled(&mut StdRng::seed_from_u64(seed));
        let (c, h, w) = d.image_shape();
        let px = c * h * w;
        for i in 0..s.len() {
            let img = s.image(i);
            // Find the original index with identical pixels.
            let mut found = false;
            for j in 0..d.len() {
                if d.images().as_slice()[j * px..(j + 1) * px] == *img.as_slice() {
                    prop_assert_eq!(d.labels()[j], s.labels()[i]);
                    found = true;
                    break;
                }
            }
            prop_assert!(found, "shuffled sample {i} not found in original");
        }
    }

    #[test]
    fn normalize_is_idempotent_up_to_tolerance(classes in 2usize..5, seed in 0u64..500) {
        let mut d = Dataset::gaussian_blobs(&spec(classes, 6, seed)).unwrap();
        d.normalize();
        let first = d.images().clone();
        d.normalize();
        for (a, b) in first.as_slice().iter().zip(d.images().as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn corrupt_labels_stays_in_range(fraction in 0.0f64..1.0, seed in 0u64..500) {
        let mut d = Dataset::gaussian_blobs(&spec(4, 8, seed)).unwrap();
        d.corrupt_labels(fraction, &mut StdRng::seed_from_u64(seed));
        prop_assert!(d.labels().iter().all(|&l| l < 4));
    }
}
