//! Error type for lifetime simulation.

use std::error::Error;
use std::fmt;

use memaging_crossbar::CrossbarError;
use memaging_nn::NnError;

/// Error produced by the lifetime simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum LifetimeError {
    /// An underlying crossbar operation failed structurally.
    Crossbar(CrossbarError),
    /// An underlying network operation failed.
    Network(NnError),
    /// The simulation configuration was invalid.
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for LifetimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifetimeError::Crossbar(e) => write!(f, "crossbar error: {e}"),
            LifetimeError::Network(e) => write!(f, "network error: {e}"),
            LifetimeError::InvalidConfig { reason } => {
                write!(f, "invalid lifetime config: {reason}")
            }
        }
    }
}

impl Error for LifetimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LifetimeError::Crossbar(e) => Some(e),
            LifetimeError::Network(e) => Some(e),
            LifetimeError::InvalidConfig { .. } => None,
        }
    }
}

impl From<CrossbarError> for LifetimeError {
    fn from(e: CrossbarError) -> Self {
        LifetimeError::Crossbar(e)
    }
}

impl From<NnError> for LifetimeError {
    fn from(e: NnError) -> Self {
        LifetimeError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LifetimeError::InvalidConfig { reason: "x".into() };
        assert!(e.to_string().contains("invalid"));
        assert!(Error::source(&e).is_none());
        let e: LifetimeError = NnError::InvalidConfig { reason: "y".into() }.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LifetimeError>();
    }
}
