//! The lifetime simulation loop (paper §V, Table I, Figs. 10–11).
//!
//! A deployed crossbar alternates between *serving applications* (inference,
//! which slowly drifts conductances — recoverable) and *maintenance
//! sessions* (re-mapping the trained weights and online-tuning back to the
//! target accuracy — whose programming pulses irreversibly age the
//! devices). The crossbar's lifetime is the number of applications served
//! before a maintenance session fails to reach the target accuracy within
//! the tuning budget (150 iterations in the paper).

use memaging_crossbar::{tune_with_recorder, CrossbarNetwork, ProgramStats, TuneConfig};
use memaging_dataset::Dataset;
use memaging_device::{ArrheniusAging, DeviceSpec};
use memaging_nn::Network;
use memaging_obs::Recorder;
use memaging_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::LifetimeError;
use crate::health::{HealthConfig, HealthMonitor};
use crate::strategy::Strategy;

/// Configuration of a lifetime simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeConfig {
    /// The training/mapping strategy under test.
    pub strategy: Strategy,
    /// Accuracy each maintenance session must restore.
    pub target_accuracy: f64,
    /// Tuning-iteration budget per session (paper: 150).
    pub max_tuning_iterations: usize,
    /// Applications (inferences) served between maintenance sessions.
    pub applications_per_session: u64,
    /// Hard cap on simulated sessions (a survivor is reported with
    /// `failed == false`).
    pub max_sessions: usize,
    /// Per-device probability of drifting during one serving period.
    pub drift_probability: f64,
    /// Relative conductance-drift magnitude σ: a drifting device moves
    /// `g ← g·(1 + σ·z)`, `z ~ N(0,1)`. Proportional-in-conductance drift is
    /// the physical model (relaxation scales with filament current).
    pub drift_sigma: f64,
    /// Mini-batch size for tuning and evaluation.
    pub batch_size: usize,
    /// RNG seed for the drift process.
    pub seed: u64,
    /// Maintenance patience: the fraction of the tuning budget a session may
    /// spend before escalating to a re-map. Tuning-iteration growth is the
    /// paper's early-warning signal (Fig. 10); aborting a struggling tune,
    /// re-mapping, and tuning again avoids burning the array in a doomed
    /// full-budget session. `1.0` lets the first pass use the entire budget
    /// before the re-map escalation.
    pub remap_trigger: f64,
    /// Enables the row-swapping wear-leveling baseline of the paper's
    /// ref. [12] on top of the selected strategy (prior-work comparison).
    pub wear_leveling: bool,
    /// Uses the incremental candidate-evaluation engine for aging-aware
    /// range selection (default). The naive per-candidate re-simulation is
    /// kept as a reference oracle; both produce identical map reports.
    pub incremental_eval: bool,
    /// Scores aging-aware candidate windows on the fixed-point kernels
    /// (u8 level codes + integer accumulation) instead of the f32 forward
    /// pass. Deterministic at any thread count; the selected windows may
    /// differ from f32 mode within the quantization error bound. Only
    /// meaningful with `incremental_eval`.
    pub quantized_eval: bool,
    /// Programs only cells whose target level changed on every (re-)map
    /// (default). Bitwise identical to full reprogramming when
    /// `remap_tolerance == 0.0`; `false` keeps the full-reprogram oracle.
    pub delta_remap: bool,
    /// Delta-remap tuning tolerance in grid levels (`[0, 0.5]`): drift
    /// within this distance of the target level is left in place instead
    /// of being chased with stressful pulses. Only meaningful with
    /// `delta_remap`.
    pub remap_tolerance: f64,
    /// Thresholds of the wear-health subsystem (forecaster + alerts). The
    /// monitor only runs when a recorder is enabled — its reports flow
    /// through the recorder's sinks.
    pub health: HealthConfig,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        LifetimeConfig {
            strategy: Strategy::TT,
            target_accuracy: 0.9,
            max_tuning_iterations: 150,
            applications_per_session: 500_000,
            max_sessions: 64,
            drift_probability: 0.08,
            drift_sigma: 0.08,
            batch_size: 32,
            seed: 0,
            remap_trigger: 0.3,
            wear_leveling: false,
            incremental_eval: true,
            quantized_eval: false,
            delta_remap: true,
            remap_tolerance: 0.0,
            health: HealthConfig::default(),
        }
    }
}

impl LifetimeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LifetimeError::InvalidConfig`] for zero budgets or an
    /// out-of-range probability/accuracy.
    pub fn validate(&self) -> Result<(), LifetimeError> {
        if self.max_tuning_iterations == 0
            || self.max_sessions == 0
            || self.batch_size == 0
            || self.applications_per_session == 0
        {
            return Err(LifetimeError::InvalidConfig {
                reason: "iteration/session/batch/application budgets must be nonzero".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.drift_probability) {
            return Err(LifetimeError::InvalidConfig {
                reason: format!("drift probability {} not in [0, 1]", self.drift_probability),
            });
        }
        if !self.drift_sigma.is_finite() || self.drift_sigma < 0.0 {
            return Err(LifetimeError::InvalidConfig {
                reason: format!("drift sigma {} must be finite and >= 0", self.drift_sigma),
            });
        }
        if !(0.0..=1.0).contains(&self.target_accuracy) {
            return Err(LifetimeError::InvalidConfig {
                reason: format!("target accuracy {} not in [0, 1]", self.target_accuracy),
            });
        }
        if !(0.0..=1.0).contains(&self.remap_trigger) {
            return Err(LifetimeError::InvalidConfig {
                reason: format!("remap trigger {} not in [0, 1]", self.remap_trigger),
            });
        }
        if !self.remap_tolerance.is_finite() || !(0.0..=0.5).contains(&self.remap_tolerance) {
            return Err(LifetimeError::InvalidConfig {
                reason: format!("remap tolerance {} not in [0, 0.5]", self.remap_tolerance),
            });
        }
        self.health.validate()?;
        Ok(())
    }
}

/// Telemetry of one maintenance session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Session index (0-based; session 0 is deployment).
    pub session: usize,
    /// Cumulative applications served *before* this session.
    pub applications_before: u64,
    /// Programming statistics of the mapping step (zero unless this session
    /// deployed or escalated to a re-map).
    pub map_stats: ProgramStats,
    /// Whether this session (re-)mapped the weights. Session 0 always maps;
    /// later sessions map only as recovery after a failed tuning pass.
    pub remapped: bool,
    /// Common mapping window chosen per layer at the most recent map.
    pub windows: Vec<memaging_device::AgedWindow>,
    /// Hardware accuracy at session start (after drift, before tuning).
    pub pre_tune_accuracy: f64,
    /// Online-tuning iterations used (Fig. 10 series; sums both passes when
    /// the session escalated to a re-map).
    pub tuning_iterations: usize,
    /// Programming pulses spent by tuning.
    pub tuning_pulses: u64,
    /// Accuracy at session end.
    pub accuracy: f64,
    /// Whether the session restored the target accuracy.
    pub converged: bool,
    /// Mean aged upper resistance bound per mappable layer (Fig. 11 series).
    pub per_layer_mean_r_max: Vec<f64>,
    /// Worn-out devices across all arrays at session end.
    pub worn_out_devices: usize,
}

/// The outcome of a full lifetime simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeResult {
    /// The strategy simulated.
    pub strategy: Strategy,
    /// Per-session telemetry, in order.
    pub sessions: Vec<SessionRecord>,
    /// Applications served before failure (or before the session cap).
    pub lifetime_applications: u64,
    /// `true` if a maintenance session failed (genuine end of life);
    /// `false` if the simulation hit `max_sessions` while still healthy.
    pub failed: bool,
}

impl LifetimeResult {
    /// The tuning-iterations series for Fig. 10 (one point per session).
    pub fn tuning_iteration_series(&self) -> Vec<(u64, usize)> {
        self.sessions.iter().map(|s| (s.applications_before, s.tuning_iterations)).collect()
    }

    /// The per-layer mean `R_aged,max` series for Fig. 11: one `(apps,
    /// bounds)` entry per session.
    pub fn layer_aging_series(&self) -> Vec<(u64, Vec<f64>)> {
        self.sessions
            .iter()
            .map(|s| (s.applications_before, s.per_layer_mean_r_max.clone()))
            .collect()
    }
}

/// Runs the lifetime simulation for a *pre-trained* network.
///
/// Training (traditional vs skewed) happens upstream — see
/// `memaging::Framework` — because the paper trains once and deploys. The
/// deployment lifecycle follows the paper's Fig. 5 workflow:
///
/// 1. **Deploy** (session 0): map the trained weights with the strategy's
///    mapping and online-tune to the target accuracy.
/// 2. **Serve**: applications run; conductances drift (recoverable).
/// 3. **Maintain**: online tuning (eq. 5) restores the target accuracy.
///    Its programming pulses are what irreversibly age the devices — the
///    feedback loop at the heart of the paper.
/// 4. **Recover**: if tuning alone cannot restore the target, the weights
///    are re-mapped (fresh-range for `T+T`/`ST+T`, aged-range for `ST+AT`)
///    and tuned again. If that still fails, the crossbar is dead.
///
/// # Errors
///
/// Returns [`LifetimeError::InvalidConfig`] for a bad config and propagates
/// structural crossbar/network errors. A failing session is *not* an
/// error — it terminates the simulation normally with `failed == true`.
pub fn run_lifetime(
    network: Network,
    spec: DeviceSpec,
    aging: ArrheniusAging,
    data: &Dataset,
    config: &LifetimeConfig,
) -> Result<LifetimeResult, LifetimeError> {
    run_lifetime_with_recorder(network, spec, aging, data, config, &Recorder::disabled())
}

/// [`run_lifetime`] with observability. Each maintenance session is stamped
/// with its index ([`Recorder::set_session`]) and traced as `map` (when the
/// session maps), `evaluate` and `tune` spans; per session the recorder
/// receives the wear-health report of [`crate::HealthMonitor`] (the
/// `aging.*`/`wear.*`/`health.*` gauges, the sessions-to-failure forecast
/// and any warn/critical alerts), wear counters, and a session-summary
/// event carrying `tuner.iterations`, `tuner.pulses` and the session
/// accuracies. With a disabled recorder this is identical to
/// [`run_lifetime`].
///
/// # Errors
///
/// Same as [`run_lifetime`].
pub fn run_lifetime_with_recorder(
    network: Network,
    spec: DeviceSpec,
    aging: ArrheniusAging,
    data: &Dataset,
    config: &LifetimeConfig,
    recorder: &Recorder,
) -> Result<LifetimeResult, LifetimeError> {
    config.validate()?;
    let trained: Vec<Tensor> = network.weight_matrices();
    let mut health =
        HealthMonitor::new(spec.r_min, spec.r_max, config.max_tuning_iterations, config.health);
    let mut hw = CrossbarNetwork::new(network, spec, aging)?;
    hw.set_wear_leveling(config.wear_leveling);
    hw.set_incremental_eval(config.incremental_eval);
    hw.set_quantized_eval(config.quantized_eval);
    hw.set_delta_remap(config.delta_remap);
    hw.set_remap_tolerance(config.remap_tolerance);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sessions = Vec::new();
    let mut applications: u64 = 0;
    let mut last_windows: Vec<memaging_device::AgedWindow> = Vec::new();
    let tune_config = TuneConfig {
        max_iterations: config.max_tuning_iterations,
        target_accuracy: config.target_accuracy,
        batch_size: config.batch_size,
        ..TuneConfig::default()
    };
    let patience =
        ((config.max_tuning_iterations as f64) * config.remap_trigger).ceil().max(1.0) as usize;
    let patience_config = TuneConfig { max_iterations: patience, ..tune_config };
    for session in 0..config.max_sessions {
        recorder.set_session(Some(session as u64));
        let mut map_stats = ProgramStats::default();
        let mut remapped = false;
        let pre_tune_accuracy;
        if session == 0 {
            // Deployment: initial mapping.
            hw.restore_software_weights(&trained)?;
            let report = hw.map_weights_with_recorder(
                config.strategy.mapping(),
                Some((data, config.batch_size)),
                recorder,
            )?;
            map_stats.merge(report.stats);
            last_windows = report.windows.clone();
            remapped = true;
            pre_tune_accuracy = if recorder.is_enabled() {
                // Evaluation is pure, so this re-measures post_map_accuracy
                // exactly — it exists to give session 0 an `evaluate` span
                // like every later session.
                let _span = recorder.span("evaluate");
                hw.evaluate(data, config.batch_size)?
            } else {
                report.post_map_accuracy.unwrap_or(0.0)
            };
        } else {
            // Serve applications: recoverable conductance drift.
            hw.apply_conductance_drift(config.drift_probability, config.drift_sigma, &mut rng);
            applications += config.applications_per_session;
            let span = recorder.span("evaluate");
            pre_tune_accuracy = hw.evaluate(data, config.batch_size)?;
            drop(span);
        }
        // Maintenance: online tuning (paper eq. 5) with limited patience.
        let mut tune_report = tune_with_recorder(&mut hw, data, &patience_config, recorder)?;
        let mut iterations = tune_report.iterations;
        let mut pulses = tune_report.pulses;
        if !tune_report.converged {
            // Escalation: the iteration blow-up of Fig. 10 is the failure
            // precursor. Re-map with the strategy's mapping (fresh ranges
            // for T+T/ST+T, aged ranges for ST+AT) and spend the remaining
            // budget tuning the re-mapped state.
            hw.restore_software_weights(&trained)?;
            let report = hw.map_weights_with_recorder(
                config.strategy.mapping(),
                Some((data, config.batch_size)),
                recorder,
            )?;
            map_stats.merge(report.stats);
            last_windows = report.windows.clone();
            remapped = true;
            recorder.counter("lifetime.remaps", 1);
            let remaining = TuneConfig {
                max_iterations: config.max_tuning_iterations.saturating_sub(patience).max(1),
                ..tune_config
            };
            tune_report = tune_with_recorder(&mut hw, data, &remaining, recorder)?;
            iterations += tune_report.iterations;
            pulses += tune_report.pulses;
        }
        let record = SessionRecord {
            session,
            applications_before: applications,
            map_stats,
            remapped,
            windows: last_windows.clone(),
            pre_tune_accuracy,
            tuning_iterations: iterations,
            tuning_pulses: pulses,
            accuracy: tune_report.final_accuracy,
            converged: tune_report.converged,
            per_layer_mean_r_max: hw.per_layer_mean_r_max(),
            worn_out_devices: hw.worn_out_count(),
        };
        // Programming Joule heat spreads through the array substrate.
        hw.equilibrate_thermal();
        if recorder.is_enabled() {
            recorder.counter("lifetime.sessions", 1);
            // Wear-health assessment: per-layer aged-bound gauges, the
            // sessions-to-failure forecast, and threshold alerts.
            health
                .observe(session as u64, &hw.wear_snapshots(), record.tuning_iterations)
                .emit(recorder);
            recorder.gauge("lifetime.worn_out_devices", record.worn_out_devices as f64);
            recorder.session_summary(
                session as u64,
                &[
                    ("tuner.iterations", record.tuning_iterations as f64),
                    ("tuner.pulses", record.tuning_pulses as f64),
                    ("pre_tune_accuracy", record.pre_tune_accuracy),
                    ("accuracy", record.accuracy),
                    ("remapped", if record.remapped { 1.0 } else { 0.0 }),
                    ("converged", if record.converged { 1.0 } else { 0.0 }),
                    ("worn_out_devices", record.worn_out_devices as f64),
                ],
            );
        }
        let converged = record.converged;
        sessions.push(record);
        if !converged {
            recorder.set_session(None);
            return Ok(LifetimeResult {
                strategy: config.strategy,
                sessions,
                lifetime_applications: applications,
                failed: true,
            });
        }
    }
    recorder.set_session(None);
    applications += config.applications_per_session;
    Ok(LifetimeResult {
        strategy: config.strategy,
        sessions,
        lifetime_applications: applications,
        failed: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memaging_dataset::SyntheticSpec;
    use memaging_nn::{models, train, NoRegularizer, SkewedL2, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(seed: u64) -> Dataset {
        let mut d = Dataset::gaussian_blobs(&SyntheticSpec::small(3, seed)).unwrap();
        d.normalize();
        d
    }

    fn trained(data: &Dataset, skewed: bool, seed: u64) -> Network {
        let mut net = models::mlp(&[144, 16, 3], &mut StdRng::seed_from_u64(seed)).unwrap();
        let config = TrainConfig { epochs: 12, target_accuracy: 0.98, ..TrainConfig::default() };
        train(&mut net, data, &config, &NoRegularizer).unwrap();
        if skewed {
            let reg = SkewedL2::from_layer_stds(&net.weight_stds(), 1.0, 5e-3, 5e-4);
            let config = TrainConfig { epochs: 8, ..TrainConfig::default() };
            train(&mut net, data, &config, &reg).unwrap();
        }
        net
    }

    fn fast_config(strategy: Strategy) -> LifetimeConfig {
        LifetimeConfig {
            strategy,
            target_accuracy: 0.85,
            max_tuning_iterations: 40,
            max_sessions: 4,
            ..LifetimeConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        let mut c = LifetimeConfig::default();
        assert!(c.validate().is_ok());
        c.max_sessions = 0;
        assert!(c.validate().is_err());
        let c = LifetimeConfig { drift_probability: 1.5, ..LifetimeConfig::default() };
        assert!(c.validate().is_err());
        let c = LifetimeConfig { target_accuracy: -0.1, ..LifetimeConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn healthy_network_survives_a_few_sessions() {
        let data = blobs(31);
        let net = trained(&data, false, 31);
        let result = run_lifetime(
            net,
            DeviceSpec::default(),
            ArrheniusAging::default(),
            &data,
            &fast_config(Strategy::TT),
        )
        .unwrap();
        assert_eq!(result.sessions.len(), 4, "should survive the short cap: {result:?}");
        assert!(!result.failed);
        assert!(result.lifetime_applications >= 4 * 500_000);
        for s in &result.sessions {
            assert!(s.converged);
            assert!(s.accuracy >= 0.85);
            assert_eq!(s.per_layer_mean_r_max.len(), 2);
        }
    }

    #[test]
    fn sessions_record_monotone_applications() {
        let data = blobs(32);
        let net = trained(&data, true, 32);
        let result = run_lifetime(
            net,
            DeviceSpec::default(),
            ArrheniusAging::default(),
            &data,
            &fast_config(Strategy::StT),
        )
        .unwrap();
        let series = result.tuning_iteration_series();
        for pair in series.windows(2) {
            assert!(pair[1].0 > pair[0].0);
        }
        assert_eq!(series.len(), result.sessions.len());
    }

    #[test]
    fn aging_accumulates_across_sessions() {
        let data = blobs(33);
        let net = trained(&data, false, 33);
        let result = run_lifetime(
            net,
            DeviceSpec::default(),
            ArrheniusAging::default(),
            &data,
            &fast_config(Strategy::TT),
        )
        .unwrap();
        let first = &result.sessions.first().unwrap().per_layer_mean_r_max;
        let last = &result.sessions.last().unwrap().per_layer_mean_r_max;
        for (a, b) in first.iter().zip(last) {
            assert!(b <= a, "mean aged bound must not grow: {a} -> {b}");
        }
        // Maintenance costs pulses every session.
        assert!(result.sessions[0].map_stats.pulses > 0, "deployment maps");
    }

    #[test]
    fn accelerated_aging_ends_the_lifetime() {
        // Crank the aging magnitude so the window collapses within a few
        // sessions; the simulation must terminate with failed == true.
        let data = blobs(34);
        let net = trained(&data, false, 34);
        let aging = ArrheniusAging { a_f: 1.0e18, a_g: 1.0e17, ..ArrheniusAging::default() };
        let config = LifetimeConfig {
            strategy: Strategy::TT,
            target_accuracy: 0.9,
            max_tuning_iterations: 25,
            max_sessions: 40,
            drift_probability: 0.5,
            ..LifetimeConfig::default()
        };
        let result = run_lifetime(net, DeviceSpec::default(), aging, &data, &config).unwrap();
        assert!(result.failed, "accelerated aging must kill the crossbar: {result:?}");
        assert!(!result.sessions.last().unwrap().converged);
        assert!(result.sessions.len() < 40);
    }

    #[test]
    fn st_at_outlives_tt_under_accelerated_aging() {
        // The paper's headline ordering on a small testbed: ST+AT >= T+T.
        let data = blobs(35);
        let aging = ArrheniusAging { a_f: 1.0e16, ..ArrheniusAging::default() };
        let config_tt = LifetimeConfig {
            strategy: Strategy::TT,
            target_accuracy: 0.88,
            max_tuning_iterations: 30,
            max_sessions: 30,
            ..LifetimeConfig::default()
        };
        let config_stat = LifetimeConfig { strategy: Strategy::StAt, ..config_tt };
        let tt = run_lifetime(
            trained(&data, false, 35),
            DeviceSpec::default(),
            aging,
            &data,
            &config_tt,
        )
        .unwrap();
        let stat = run_lifetime(
            trained(&data, true, 35),
            DeviceSpec::default(),
            aging,
            &data,
            &config_stat,
        )
        .unwrap();
        assert!(
            stat.lifetime_applications >= tt.lifetime_applications,
            "ST+AT ({}) must not lose to T+T ({})",
            stat.lifetime_applications,
            tt.lifetime_applications
        );
    }
}
