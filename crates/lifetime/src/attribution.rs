//! The wear-attribution ledger: *which* traffic aged *which* tiles.
//!
//! Aggregate wear totals cannot answer the question the paper's lifetime
//! argument turns on — whether inference traffic, remap reprogramming, or
//! tuning is consuming a tile's remaining window. The ledger records
//! per-tile wear **deltas keyed by cause**, in admission-sequence order
//! (the serve tier charges it from the single maintenance thread, so
//! entry order is the maintenance-boundary order, never wall-clock).
//!
//! ## Determinism contract
//!
//! Every charge passes the network's *absolute* per-tile stress
//! ([`WearLedger::charge`] takes the checkpoint, not a delta). The ledger
//! stores `delta[t] = absolute[t] - attributed[t]` for the entry and then
//! **assigns** `attributed[t] = absolute[t]`. Because the running account
//! is assignment-based, it is bitwise equal to the hardware's own stress
//! state at every checkpoint regardless of how many entries led there —
//! replays at any worker/thread count produce bit-identical ledgers, and
//! `Σ attributed[t]` (summed in tile order) exactly equals the network's
//! total accrued wear. Per-cause totals are sums of the stored deltas;
//! they telescope back to the same total because the per-entry deltas are
//! exact differences of consecutive checkpoints.

use std::fmt;

/// Why a wear delta was accrued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WearCause {
    /// Read-disturb from serving an inference interval; `batch_seq` is the
    /// maintenance-boundary id (the admission sequence number the interval
    /// ended at).
    InferenceRead {
        /// Maintenance-boundary id the interval's reads were charged at.
        batch_seq: u64,
    },
    /// Reprogramming pulses from (re)mapping the network; `generation` is
    /// the mapping generation the remap produced (0 for the initial
    /// deployment map).
    Remap {
        /// Mapping generation produced by this (re)map.
        generation: u64,
    },
    /// Closed-loop tuning pulses outside a remap.
    Tuning,
}

impl WearCause {
    /// The cause's stable wire label (`inference_read` / `remap` /
    /// `tuning`) used in JSON exports and per-cause totals.
    pub fn kind(&self) -> &'static str {
        match self {
            WearCause::InferenceRead { .. } => "inference_read",
            WearCause::Remap { .. } => "remap",
            WearCause::Tuning => "tuning",
        }
    }

    /// The cause's discriminating parameter (`batch_seq`, `generation`),
    /// if it has one.
    pub fn param(&self) -> Option<u64> {
        match self {
            WearCause::InferenceRead { batch_seq } => Some(*batch_seq),
            WearCause::Remap { generation } => Some(*generation),
            WearCause::Tuning => None,
        }
    }
}

impl fmt::Display for WearCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WearCause::InferenceRead { batch_seq } => write!(f, "inference_read[{batch_seq}]"),
            WearCause::Remap { generation } => write!(f, "remap[{generation}]"),
            WearCause::Tuning => f.write_str("tuning"),
        }
    }
}

/// One attributed wear increment: the per-tile stress delta a single cause
/// added between two consecutive checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct WearEntry {
    /// What caused the wear.
    pub cause: WearCause,
    /// Stress delta per tile, seconds, in tile order.
    pub per_tile: Vec<f64>,
    /// Sum of `per_tile` in tile order.
    pub total: f64,
}

/// The append-only wear-attribution ledger. See the module docs for the
/// determinism contract; construct one per deployment with
/// [`WearLedger::new`] and charge it at every wear-mutating event.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WearLedger {
    /// Running absolute per-tile stress already attributed (assigned from
    /// the last checkpoint, so bitwise equal to the hardware state).
    attributed: Vec<f64>,
    entries: Vec<WearEntry>,
    /// Fleet replica id owning these tiles, `None` for a single-network
    /// ledger. Tile indices are *per replica*: two fleet ledgers both
    /// track tiles `0..n` of *different* hardware, so any cross-replica
    /// aggregation must key tiles by `(replica, tile)` — the label makes
    /// the namespace explicit in JSON exports and analyzer folds instead
    /// of silently aliasing tile indices across replicas.
    replica: Option<usize>,
}

impl WearLedger {
    /// An empty ledger over `tiles` tiles.
    pub fn new(tiles: usize) -> Self {
        WearLedger::for_replica(tiles, None)
    }

    /// An empty ledger over `tiles` tiles of fleet replica `replica`
    /// (`None`: single-network, identical to [`WearLedger::new`]).
    pub fn for_replica(tiles: usize, replica: Option<usize>) -> Self {
        WearLedger { attributed: vec![0.0; tiles], entries: Vec::new(), replica }
    }

    /// The fleet replica id these tiles belong to, if any.
    pub fn replica(&self) -> Option<usize> {
        self.replica
    }

    /// Number of tiles tracked.
    pub fn tiles(&self) -> usize {
        self.attributed.len()
    }

    /// The attributed entries, in charge (admission-sequence) order.
    pub fn entries(&self) -> &[WearEntry] {
        &self.entries
    }

    /// The running absolute per-tile attributed stress — bitwise equal to
    /// the network's per-tile stress at the last checkpoint.
    pub fn attributed(&self) -> &[f64] {
        &self.attributed
    }

    /// Total attributed stress: `Σ attributed[t]` in tile order, matching
    /// a fold of the network's tile stress in the same order bit-for-bit.
    pub fn total(&self) -> f64 {
        self.attributed.iter().sum()
    }

    /// Charges the difference between `absolute` (the network's current
    /// per-tile stress, from `CrossbarNetwork::tile_stress`) and the last
    /// checkpoint to `cause`. Returns the charged total; an all-zero delta
    /// records no entry and returns 0.0.
    ///
    /// # Panics
    ///
    /// Panics if `absolute` has a different tile count than the ledger —
    /// a deployment wiring bug, not a runtime condition.
    pub fn charge(&mut self, cause: WearCause, absolute: &[f64]) -> f64 {
        assert_eq!(
            absolute.len(),
            self.attributed.len(),
            "ledger tracks {} tiles, checkpoint has {}",
            self.attributed.len(),
            absolute.len()
        );
        let per_tile: Vec<f64> =
            absolute.iter().zip(&self.attributed).map(|(now, seen)| now - seen).collect();
        if per_tile.iter().all(|d| *d == 0.0) {
            return 0.0;
        }
        self.attributed.copy_from_slice(absolute);
        let total: f64 = per_tile.iter().sum();
        self.entries.push(WearEntry { cause, per_tile, total });
        total
    }

    /// Per-cause stress totals in fixed order (`inference_read`, `remap`,
    /// `tuning`), each paired with its entry count. Causes with no entries
    /// report `(0, 0.0)`.
    pub fn cause_totals(&self) -> Vec<(&'static str, u64, f64)> {
        ["inference_read", "remap", "tuning"]
            .iter()
            .map(|kind| {
                let mut events = 0u64;
                let mut total = 0.0f64;
                for entry in &self.entries {
                    if entry.cause.kind() == *kind {
                        events += 1;
                        total += entry.total;
                    }
                }
                (*kind, events, total)
            })
            .collect()
    }

    /// The ledger as JSON — the body of `GET /wear/attribution`:
    /// `{"tiles":N,"total_stress":S,"causes":[{"cause","events","stress"}],
    /// "entries":[{"cause","param","stress"}],"per_tile":[..]}`. A fleet
    /// replica's ledger leads with `"replica":r` so its tile indices are
    /// never mistaken for another replica's.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + 32 * self.entries.len());
        out.push('{');
        if let Some(replica) = self.replica {
            let _ = write!(out, "\"replica\":{replica},");
        }
        let _ = write!(out, "\"tiles\":{},\"total_stress\":{}", self.tiles(), self.total());
        out.push_str(",\"causes\":[");
        for (i, (kind, events, stress)) in self.cause_totals().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"cause\":\"{kind}\",\"events\":{events},\"stress\":{stress}}}");
        }
        out.push_str("],\"entries\":[");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"cause\":\"{}\"", entry.cause.kind());
            if let Some(param) = entry.cause.param() {
                let key = match entry.cause {
                    WearCause::InferenceRead { .. } => "batch_seq",
                    WearCause::Remap { .. } => "generation",
                    WearCause::Tuning => unreachable!("tuning has no param"),
                };
                let _ = write!(out, ",\"{key}\":{param}");
            }
            let _ = write!(out, ",\"stress\":{}}}", entry.total);
        }
        out.push_str("],\"per_tile\":[");
        for (i, stress) in self.attributed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{stress}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_stores_exact_deltas_and_checkpoints() {
        let mut ledger = WearLedger::new(2);
        let charged = ledger.charge(WearCause::Remap { generation: 0 }, &[0.25, 0.5]);
        assert_eq!(charged, 0.75);
        // The running account is assigned from the checkpoint, so it is
        // bitwise equal to the hardware state no matter the history.
        let after = [0.25 + 0.1, 0.5 + 0.3];
        ledger.charge(WearCause::InferenceRead { batch_seq: 32 }, &after);
        assert_eq!(ledger.attributed()[0].to_bits(), after[0].to_bits());
        assert_eq!(ledger.attributed()[1].to_bits(), after[1].to_bits());
        assert_eq!(ledger.total().to_bits(), after.iter().sum::<f64>().to_bits());
        assert_eq!(ledger.entries().len(), 2);
        assert_eq!(ledger.entries()[1].cause, WearCause::InferenceRead { batch_seq: 32 });
    }

    #[test]
    fn zero_deltas_record_nothing() {
        let mut ledger = WearLedger::new(3);
        assert_eq!(ledger.charge(WearCause::Tuning, &[0.0, 0.0, 0.0]), 0.0);
        let state = [1.0, 2.0, 3.0];
        ledger.charge(WearCause::Tuning, &state);
        assert_eq!(ledger.charge(WearCause::InferenceRead { batch_seq: 1 }, &state), 0.0);
        assert_eq!(ledger.entries().len(), 1, "unchanged checkpoints add no entries");
    }

    #[test]
    fn cause_totals_cover_every_kind_in_fixed_order() {
        let mut ledger = WearLedger::new(1);
        ledger.charge(WearCause::Remap { generation: 0 }, &[1.0]);
        ledger.charge(WearCause::InferenceRead { batch_seq: 16 }, &[1.5]);
        ledger.charge(WearCause::InferenceRead { batch_seq: 32 }, &[2.5]);
        let totals = ledger.cause_totals();
        assert_eq!(totals[0], ("inference_read", 2, 1.5));
        assert_eq!(totals[1], ("remap", 1, 1.0));
        assert_eq!(totals[2], ("tuning", 0, 0.0));
        // Per-cause totals telescope back to the full account exactly:
        // the deltas are exact differences of consecutive checkpoints.
        let sum: f64 = totals.iter().map(|(_, _, s)| s).sum();
        assert_eq!(sum.to_bits(), ledger.total().to_bits());
    }

    #[test]
    fn replay_is_bit_identical() {
        // Two histories reaching the same checkpoints via different entry
        // boundaries still agree on the running account (assignment-based),
        // and identical histories agree on everything.
        let checkpoints = [[0.1, 0.2], [0.30000000000000004, 0.7], [1.1, 0.9]];
        let run = || {
            let mut ledger = WearLedger::new(2);
            ledger.charge(WearCause::Remap { generation: 0 }, &checkpoints[0]);
            ledger.charge(WearCause::InferenceRead { batch_seq: 16 }, &checkpoints[1]);
            ledger.charge(WearCause::Remap { generation: 1 }, &checkpoints[2]);
            ledger
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.total().to_bits(), checkpoints[2].iter().sum::<f64>().to_bits());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut ledger = WearLedger::new(2);
        ledger.charge(WearCause::Remap { generation: 0 }, &[0.5, 0.25]);
        ledger.charge(WearCause::InferenceRead { batch_seq: 64 }, &[1.0, 0.5]);
        let json = ledger.to_json();
        assert!(json.starts_with("{\"tiles\":2,\"total_stress\":1.5,\"causes\":["), "{json}");
        assert!(json.contains("{\"cause\":\"inference_read\",\"events\":1,\"stress\":0.75}"));
        assert!(json.contains("{\"cause\":\"remap\",\"generation\":0,\"stress\":0.75}"));
        assert!(json.contains("{\"cause\":\"inference_read\",\"batch_seq\":64,\"stress\":0.75}"));
        assert!(json.ends_with("\"per_tile\":[1,0.5]}"), "{json}");
        assert_eq!(WearCause::Tuning.to_string(), "tuning");
        assert_eq!(WearCause::InferenceRead { batch_seq: 3 }.to_string(), "inference_read[3]");
        assert_eq!(WearCause::Remap { generation: 2 }.to_string(), "remap[2]");
    }

    #[test]
    #[should_panic(expected = "ledger tracks 2 tiles")]
    fn tile_count_mismatch_panics() {
        WearLedger::new(2).charge(WearCause::Tuning, &[1.0]);
    }

    #[test]
    fn replica_label_namespaces_the_json_but_not_the_account() {
        let mut labeled = WearLedger::for_replica(2, Some(3));
        let mut plain = WearLedger::new(2);
        assert_eq!(labeled.replica(), Some(3));
        assert_eq!(plain.replica(), None);
        labeled.charge(WearCause::Remap { generation: 0 }, &[0.5, 0.25]);
        plain.charge(WearCause::Remap { generation: 0 }, &[0.5, 0.25]);
        assert!(labeled.to_json().starts_with("{\"replica\":3,\"tiles\":2,"));
        assert!(plain.to_json().starts_with("{\"tiles\":2,"));
        // Only the namespace differs — the account itself is identical.
        assert_eq!(labeled.entries(), plain.entries());
        assert_eq!(labeled.attributed(), plain.attributed());
    }
}
