//! # memaging-lifetime
//!
//! Lifetime simulation for memristor crossbars — the evaluation harness of
//! "Aging-aware Lifetime Enhancement for Memristor-based Neuromorphic
//! Computing" (DATE 2019).
//!
//! A deployed crossbar cycles between serving applications (inference, which
//! drifts conductances recoverably) and maintenance (re-mapping + online
//! tuning, whose programming pulses age the devices irreversibly). The
//! simulator ([`run_lifetime`]) runs that cycle until a maintenance session
//! cannot restore the target accuracy within the tuning budget — the
//! paper's failure criterion — and reports:
//!
//! * the lifetime in applications served (Table I),
//! * the per-session tuning-iteration series (Fig. 10),
//! * the per-layer mean aged resistance bounds (Fig. 11, split into conv vs
//!   FC by [`conv_vs_fc_series`]).
//!
//! The three strategies of the paper are encoded by [`Strategy`]:
//! `T+T`, `ST+T` and `ST+AT`.
//!
//! # Example
//!
//! ```no_run
//! use memaging_dataset::{Dataset, SyntheticSpec};
//! use memaging_device::{ArrheniusAging, DeviceSpec};
//! use memaging_lifetime::{run_lifetime, LifetimeConfig, Strategy};
//! use memaging_nn::{models, train, NoRegularizer, TrainConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut data = Dataset::gaussian_blobs(&SyntheticSpec::small(3, 1))?;
//! data.normalize();
//! let mut net = models::mlp(&[144, 16, 3], &mut StdRng::seed_from_u64(0))?;
//! train(&mut net, &data, &TrainConfig::default(), &NoRegularizer)?;
//! let config = LifetimeConfig { strategy: Strategy::TT, ..Default::default() };
//! let result = run_lifetime(net, DeviceSpec::default(), ArrheniusAging::default(), &data, &config)?;
//! println!("{} served {} applications", result.strategy, result.lifetime_applications);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attribution;
mod error;
mod forecast;
mod health;
mod simulator;
mod strategy;
mod telemetry;

pub use attribution::{WearCause, WearEntry, WearLedger};
pub use error::LifetimeError;
pub use forecast::{trend, worst_tile, TileTrend, DEFAULT_FORECAST_WINDOW};
pub use health::{
    HealthAlert, HealthConfig, HealthMonitor, HealthReport, LayerHealth, WearThresholds,
};
pub use simulator::{
    run_lifetime, run_lifetime_with_recorder, LifetimeConfig, LifetimeResult, SessionRecord,
};
pub use strategy::Strategy;
pub use telemetry::{compare_lifetimes, conv_vs_fc_series, KindAgingPoint, LifetimeComparison};
