//! Wear-health monitoring: per-layer degradation tracking, a
//! remaining-lifetime forecaster, and threshold alerts.
//!
//! The paper's failure criterion is reactive — a maintenance session that
//! cannot restore the target accuracy within the tuning budget (150
//! iterations). Production operators need the *leading* signals: the aged
//! resistance window shrinking session over session (eqs. 6–7, Fig. 11) and
//! tuning effort creeping toward the budget (Fig. 10). This module turns
//! both into structured health state:
//!
//! * per-layer wear gauges (`aging.r_max_ohms{layer=i}`, window fractions,
//!   pulse/stress totals) fed from [`memaging_crossbar::TileWear`]
//!   snapshots;
//! * a shrinkage-rate estimate and a **sessions-to-failure forecast** per
//!   layer, extrapolating the observed Arrhenius degradation
//!   `d(s) = R_fresh,max − R_aged,max(s) ≈ C·s^m` (stress accumulates
//!   roughly linearly with maintenance sessions, so the `t^m` law of eq. 6
//!   becomes an `s^m` law in session count) forward to the point where the
//!   window can no longer hold a usable level grid;
//! * `warn`/`critical` [alerts](memaging_obs::Event::Alert) that fire once
//!   per rule on severity escalation, flowing through the [`Recorder`] to
//!   every sink (and to the `memaging-monitor` HTTP tier).

use std::collections::HashMap;

use memaging_crossbar::TileWear;
use memaging_obs::{AlertSeverity, Recorder};

use crate::error::LifetimeError;

/// Shared wear warn/critical thresholds: the single source of truth for
/// "how worn is too worn", consumed by the health forecaster's alert rules
/// *and* by any online policy that must stay in lockstep with them (the
/// serving tier's live-remap trigger re-maps exactly when the forecaster
/// would warn, so the two can never drift apart).
///
/// Window fractions are of the fresh resistance window; session thresholds
/// are forecast maintenance sessions remaining.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearThresholds {
    /// Warn when any layer's mean window falls below this fraction of
    /// fresh.
    pub warn_window_fraction: f64,
    /// Critical when any layer's mean window falls below this fraction.
    pub critical_window_fraction: f64,
    /// Warn when the forecast sessions-to-failure drops to this value.
    pub warn_sessions_left: f64,
    /// Critical when the forecast sessions-to-failure drops to this value.
    pub critical_sessions_left: f64,
}

impl Default for WearThresholds {
    fn default() -> Self {
        WearThresholds {
            warn_window_fraction: 0.5,
            critical_window_fraction: 0.3,
            warn_sessions_left: 8.0,
            critical_sessions_left: 3.0,
        }
    }
}

impl WearThresholds {
    /// Classifies a mean window fraction (of fresh), returning the crossed
    /// severity and its threshold, or `None` while healthy.
    pub fn classify_window_fraction(&self, fraction: f64) -> Option<(AlertSeverity, f64)> {
        if fraction <= self.critical_window_fraction {
            Some((AlertSeverity::Critical, self.critical_window_fraction))
        } else if fraction <= self.warn_window_fraction {
            Some((AlertSeverity::Warn, self.warn_window_fraction))
        } else {
            None
        }
    }

    /// Classifies a forecast sessions-to-failure value.
    pub fn classify_sessions_left(&self, left: f64) -> Option<(AlertSeverity, f64)> {
        if left <= self.critical_sessions_left {
            Some((AlertSeverity::Critical, self.critical_sessions_left))
        } else if left <= self.warn_sessions_left {
            Some((AlertSeverity::Warn, self.warn_sessions_left))
        } else {
            None
        }
    }

    /// Validates threshold ordering and ranges.
    ///
    /// # Errors
    ///
    /// Returns [`LifetimeError::InvalidConfig`] when a fraction leaves
    /// `[0, 1]`, a session threshold is negative or non-finite, or a warn
    /// threshold would fire *after* its critical counterpart.
    pub fn validate(&self) -> Result<(), LifetimeError> {
        if !(0.0..=1.0).contains(&self.warn_window_fraction)
            || !(0.0..=1.0).contains(&self.critical_window_fraction)
        {
            return Err(LifetimeError::InvalidConfig {
                reason: "wear window fractions must lie in [0, 1]".into(),
            });
        }
        if !self.warn_sessions_left.is_finite()
            || !self.critical_sessions_left.is_finite()
            || self.warn_sessions_left < 0.0
            || self.critical_sessions_left < 0.0
        {
            return Err(LifetimeError::InvalidConfig {
                reason: "health session thresholds must be finite and >= 0".into(),
            });
        }
        if self.warn_window_fraction < self.critical_window_fraction
            || self.warn_sessions_left < self.critical_sessions_left
        {
            return Err(LifetimeError::InvalidConfig {
                reason: "health warn thresholds must fire before critical ones".into(),
            });
        }
        Ok(())
    }
}

/// Alert thresholds of the wear-health subsystem.
///
/// The wear-side thresholds live in the shared [`WearThresholds`] struct;
/// the tuning-budget rule (fractions of the session tuning budget) is
/// specific to the maintenance loop and stays here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Shared wear warn/critical thresholds (window fraction and forecast
    /// sessions-to-failure rules).
    pub wear: WearThresholds,
    /// Warn when a session consumes this fraction of the tuning budget.
    pub warn_tuning_fraction: f64,
    /// Critical when a session consumes this fraction of the tuning budget.
    pub critical_tuning_fraction: f64,
    /// The forecaster's failure point: the window fraction below which the
    /// level grid is considered unusable (end of extrapolation).
    pub min_usable_window_fraction: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            wear: WearThresholds::default(),
            warn_tuning_fraction: 0.6,
            critical_tuning_fraction: 0.85,
            min_usable_window_fraction: 0.2,
        }
    }
}

impl HealthConfig {
    /// Classifies a session's consumed tuning-budget fraction.
    pub fn classify_tuning_fraction(&self, fraction: f64) -> Option<(AlertSeverity, f64)> {
        if fraction >= self.critical_tuning_fraction {
            Some((AlertSeverity::Critical, self.critical_tuning_fraction))
        } else if fraction >= self.warn_tuning_fraction {
            Some((AlertSeverity::Warn, self.warn_tuning_fraction))
        } else {
            None
        }
    }

    /// Validates threshold ordering and ranges.
    ///
    /// # Errors
    ///
    /// Returns [`LifetimeError::InvalidConfig`] when a fraction leaves
    /// `[0, 1]`, a session threshold is negative or non-finite, or a warn
    /// threshold would fire *after* its critical counterpart.
    pub fn validate(&self) -> Result<(), LifetimeError> {
        self.wear.validate()?;
        let fractions = [
            self.warn_tuning_fraction,
            self.critical_tuning_fraction,
            self.min_usable_window_fraction,
        ];
        if fractions.iter().any(|f| !(0.0..=1.0).contains(f)) {
            return Err(LifetimeError::InvalidConfig {
                reason: "health fractions must lie in [0, 1]".into(),
            });
        }
        if self.warn_tuning_fraction > self.critical_tuning_fraction {
            return Err(LifetimeError::InvalidConfig {
                reason: "health warn thresholds must fire before critical ones".into(),
            });
        }
        Ok(())
    }
}

/// Health state of one layer's array at one maintenance session.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerHealth {
    /// Mappable-layer index.
    pub layer: usize,
    /// The tile's wear snapshot.
    pub wear: TileWear,
    /// Estimated shrinkage of the mean upper bound, ohms per session
    /// (positive while degrading; 0 with fewer than two observations).
    pub shrink_rate: f64,
    /// Forecast maintenance sessions until the window becomes unusable
    /// (`None` until measurable degradation has been observed).
    pub sessions_left: Option<f64>,
}

/// One alert decided by [`HealthMonitor::observe`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAlert {
    /// Severity (warn before critical, by construction).
    pub severity: AlertSeverity,
    /// Rule name, e.g. `health.sessions_left`.
    pub rule: &'static str,
    /// Observed value that crossed the threshold.
    pub value: f64,
    /// The crossed threshold.
    pub threshold: f64,
    /// Human-readable explanation.
    pub message: String,
}

/// The wear-health assessment of one maintenance session.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Session index the assessment belongs to.
    pub session: u64,
    /// Per-layer health, in mapping order.
    pub layers: Vec<LayerHealth>,
    /// Worst-layer forecast of maintenance sessions remaining.
    pub sessions_to_failure: Option<f64>,
    /// Alerts that fired at this session (escalations only — each rule
    /// alerts once per severity over the monitor's lifetime).
    pub alerts: Vec<HealthAlert>,
}

impl HealthReport {
    /// Emits the report through `recorder`: per-layer wear gauges, the
    /// forecast gauges, and one [`memaging_obs::Event::Alert`] per fired
    /// alert.
    pub fn emit(&self, recorder: &Recorder) {
        for lh in &self.layers {
            let layer = lh.layer;
            recorder.gauge_labeled("aging.r_max_ohms", "layer", layer, lh.wear.mean_r_max);
            recorder.gauge_labeled("aging.r_min_ohms", "layer", layer, lh.wear.mean_r_min);
            recorder.gauge_labeled("wear.worn_devices", "layer", layer, lh.wear.worn_out as f64);
            recorder.gauge_labeled("wear.pulses", "layer", layer, lh.wear.total_pulses as f64);
            recorder.gauge_labeled(
                "health.window_fraction",
                "layer",
                layer,
                lh.wear.mean_window_fraction,
            );
            recorder.gauge_labeled(
                "health.shrink_rate_ohms_per_session",
                "layer",
                layer,
                lh.shrink_rate,
            );
            if let Some(left) = lh.sessions_left {
                recorder.gauge_labeled("health.sessions_left", "layer", layer, left);
            }
        }
        if let Some(left) = self.sessions_to_failure {
            recorder.gauge("health.sessions_to_failure", left);
        }
        for alert in &self.alerts {
            recorder.alert(
                alert.severity,
                alert.rule,
                alert.value,
                alert.threshold,
                &alert.message,
            );
        }
    }
}

/// Tracks per-layer degradation across maintenance sessions, forecasts
/// remaining lifetime, and decides threshold alerts.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    /// Fresh resistance bounds shared by every device.
    fresh_r_min: f64,
    fresh_r_max: f64,
    /// Tuning-iteration budget per session (the failure criterion's 150).
    tuning_budget: usize,
    /// Per-layer `(session_number, mean_r_max)` history; session numbers
    /// are 1-based so the `s^m` fit never sees `ln 0`.
    history: Vec<Vec<(f64, f64)>>,
    /// Highest severity already emitted per rule (alerts fire on
    /// escalation only).
    emitted: HashMap<&'static str, AlertSeverity>,
}

impl HealthMonitor {
    /// A monitor for devices with fresh bounds `[fresh_r_min,
    /// fresh_r_max]` and the given per-session tuning budget.
    pub fn new(
        fresh_r_min: f64,
        fresh_r_max: f64,
        tuning_budget: usize,
        config: HealthConfig,
    ) -> Self {
        HealthMonitor {
            config,
            fresh_r_min,
            fresh_r_max,
            tuning_budget: tuning_budget.max(1),
            history: Vec::new(),
            emitted: HashMap::new(),
        }
    }

    /// Ingests one maintenance session's wear snapshots and tuning effort,
    /// returning the health assessment (gauges + alerts to emit).
    pub fn observe(
        &mut self,
        session: u64,
        wear: &[TileWear],
        tuning_iterations: usize,
    ) -> HealthReport {
        let s = session as f64 + 1.0;
        self.history.resize(wear.len().max(self.history.len()), Vec::new());
        let mut layers = Vec::with_capacity(wear.len());
        for (layer, tile) in wear.iter().enumerate() {
            self.history[layer].push((s, tile.mean_r_max));
            let shrink_rate = self.shrink_rate(layer);
            let sessions_left = self.forecast_sessions_left(layer, tile);
            layers.push(LayerHealth { layer, wear: *tile, shrink_rate, sessions_left });
        }
        let sessions_to_failure = layers
            .iter()
            .filter_map(|l| l.sessions_left)
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.min(v))));
        let alerts = self.decide_alerts(&layers, sessions_to_failure, tuning_iterations);
        HealthReport { session, layers, sessions_to_failure, alerts }
    }

    /// Mean upper-bound shrinkage in ohms per session for `layer` (first
    /// vs latest observation; 0 until two sessions are on record).
    fn shrink_rate(&self, layer: usize) -> f64 {
        let h = &self.history[layer];
        match (h.first(), h.last()) {
            (Some(&(s0, r0)), Some(&(s1, r1))) if s1 > s0 => (r0 - r1) / (s1 - s0),
            _ => 0.0,
        }
    }

    /// Extrapolates the layer's degradation to the session where its mean
    /// window falls to `min_usable_window_fraction` of fresh.
    ///
    /// The observed degradation `d(s) = R_fresh,max − mean R_aged,max(s)`
    /// follows the Arrhenius power law `C·s^m` (eq. 6 with stress ∝
    /// sessions). Two observations with nonzero degradation fit `m` in log
    /// space (clamped to a physical `[0.2, 2]`); a single one falls back to
    /// the model's sublinear default `m = 0.7`.
    fn forecast_sessions_left(&self, layer: usize, tile: &TileWear) -> Option<f64> {
        let fresh_width = (self.fresh_r_max - self.fresh_r_min).max(1e-12);
        let h = &self.history[layer];
        let &(s_now, r_now) = h.last()?;
        let d_now = self.fresh_r_max - r_now;
        if d_now <= 1e-9 * fresh_width {
            return None; // No measurable aging yet: nothing to extrapolate.
        }
        // Failure point: the window (anchored at the *current* lower bound,
        // which degrades far slower — eq. 7) collapses to the minimum
        // usable fraction of the fresh window.
        let r_fail = tile.mean_r_min + self.config.min_usable_window_fraction * fresh_width;
        let d_fail = self.fresh_r_max - r_fail;
        if d_now >= d_fail {
            return Some(0.0);
        }
        let exponent = h
            .iter()
            .find(|&&(s, r)| s < s_now && self.fresh_r_max - r > 1e-9 * fresh_width)
            .map_or(0.7, |&(s0, r0)| {
                let d0 = self.fresh_r_max - r0;
                ((d_now / d0).ln() / (s_now / s0).ln()).clamp(0.2, 2.0)
            });
        let c = d_now / s_now.powf(exponent);
        let s_fail = (d_fail / c).powf(1.0 / exponent);
        Some((s_fail - s_now).max(0.0))
    }

    /// Evaluates the three alert rules, recording escalations so each rule
    /// fires once per severity.
    fn decide_alerts(
        &mut self,
        layers: &[LayerHealth],
        sessions_to_failure: Option<f64>,
        tuning_iterations: usize,
    ) -> Vec<HealthAlert> {
        let mut alerts = Vec::new();
        if let Some(worst) = layers
            .iter()
            .min_by(|a, b| a.wear.mean_window_fraction.total_cmp(&b.wear.mean_window_fraction))
        {
            let value = worst.wear.mean_window_fraction;
            self.escalate(
                &mut alerts,
                "health.window_fraction",
                value,
                self.config.wear.classify_window_fraction(value),
                &format!("layer {} mean window at {:.0}% of fresh", worst.layer, 100.0 * value),
            );
        }
        if let Some(left) = sessions_to_failure {
            self.escalate(
                &mut alerts,
                "health.sessions_left",
                left,
                self.config.wear.classify_sessions_left(left),
                &format!("forecast: {left:.1} maintenance sessions to window collapse"),
            );
        }
        let budget_fraction = tuning_iterations as f64 / self.tuning_budget as f64;
        self.escalate(
            &mut alerts,
            "health.tuning_budget",
            budget_fraction,
            self.config.classify_tuning_fraction(budget_fraction),
            &format!(
                "session used {tuning_iterations} of {} tuning iterations",
                self.tuning_budget
            ),
        );
        alerts
    }

    /// Pushes an alert for the highest newly-reached severity of `rule`.
    fn escalate(
        &mut self,
        alerts: &mut Vec<HealthAlert>,
        rule: &'static str,
        value: f64,
        classified: Option<(AlertSeverity, f64)>,
        message: &str,
    ) {
        let Some((severity, threshold)) = classified else { return };
        if self.emitted.get(rule).is_some_and(|&prior| prior >= severity) {
            return;
        }
        self.emitted.insert(rule, severity);
        alerts.push(HealthAlert { severity, rule, value, threshold, message: message.to_string() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(r_min: f64, r_max: f64, fresh_width: f64) -> TileWear {
        TileWear {
            rows: 4,
            cols: 4,
            worn_out: 0,
            mean_r_max: r_max,
            mean_r_min: r_min,
            min_window_width: (r_max - r_min).max(0.0),
            mean_window_fraction: ((r_max - r_min) / fresh_width).clamp(0.0, 1.0),
            total_pulses: 100,
            total_stress: 1e-3,
        }
    }

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(1e4, 1e5, 150, HealthConfig::default())
    }

    #[test]
    fn config_validation_catches_inverted_thresholds() {
        assert!(HealthConfig::default().validate().is_ok());
        let bad = HealthConfig {
            wear: WearThresholds { warn_window_fraction: 0.2, ..WearThresholds::default() },
            ..HealthConfig::default()
        };
        assert!(bad.validate().is_err(), "warn below critical must be rejected");
        let bad = HealthConfig { warn_tuning_fraction: 0.9, ..HealthConfig::default() };
        assert!(bad.validate().is_err());
        let bad = HealthConfig {
            wear: WearThresholds { critical_sessions_left: -1.0, ..WearThresholds::default() },
            ..HealthConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = HealthConfig { min_usable_window_fraction: 1.5, ..HealthConfig::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn wear_thresholds_classify_both_rules() {
        let t = WearThresholds::default();
        assert_eq!(t.classify_window_fraction(0.9), None);
        assert_eq!(t.classify_window_fraction(0.45), Some((AlertSeverity::Warn, 0.5)));
        assert_eq!(t.classify_window_fraction(0.25), Some((AlertSeverity::Critical, 0.3)));
        assert_eq!(t.classify_sessions_left(20.0), None);
        assert_eq!(t.classify_sessions_left(5.0), Some((AlertSeverity::Warn, 8.0)));
        assert_eq!(t.classify_sessions_left(1.0), Some((AlertSeverity::Critical, 3.0)));
    }

    #[test]
    fn fresh_devices_report_no_forecast_and_no_alerts() {
        let mut m = monitor();
        let report = m.observe(0, &[tile(1e4, 1e5, 9e4)], 10);
        assert_eq!(report.session, 0);
        assert_eq!(report.layers.len(), 1);
        assert_eq!(report.layers[0].shrink_rate, 0.0);
        assert_eq!(report.layers[0].sessions_left, None);
        assert_eq!(report.sessions_to_failure, None);
        assert!(report.alerts.is_empty());
    }

    #[test]
    fn shrink_rate_tracks_observed_decline() {
        let mut m = monitor();
        m.observe(0, &[tile(1e4, 1e5, 9e4)], 10);
        let report = m.observe(2, &[tile(1e4, 9.4e4, 9e4)], 10);
        // 6 kΩ lost over two sessions.
        assert!((report.layers[0].shrink_rate - 3.0e3).abs() < 1.0);
    }

    #[test]
    fn forecast_converges_on_power_law_degradation() {
        // Synthesize d(s) = 2e3·s^0.7 and check the forecast lands near the
        // true failure session.
        let config = HealthConfig::default();
        let mut m = HealthMonitor::new(1e4, 1e5, 150, config);
        let degrade = |s: f64| 2.0e3 * s.powf(0.7);
        let mut forecast_at_5 = None;
        for session in 0..5u64 {
            let s = session as f64 + 1.0;
            let report = m.observe(session, &[tile(1e4, 1e5 - degrade(s), 9e4)], 10);
            forecast_at_5 = report.sessions_to_failure;
        }
        // True failure: r_max reaches r_min + 0.2·width = 2.8e4, i.e.
        // degradation 7.2e4 = 2e3·s^0.7 → s ≈ 167.7; at s = 5 the forecast
        // should see ≈ 162.7 sessions left.
        let left = forecast_at_5.expect("degradation observed, forecast expected");
        let truth = (7.2e4f64 / 2.0e3).powf(1.0 / 0.7) - 5.0;
        assert!(
            (left - truth).abs() / truth < 0.05,
            "forecast {left:.1} should approximate {truth:.1}"
        );
    }

    #[test]
    fn collapsed_window_forecasts_zero_sessions_left() {
        let mut m = monitor();
        let report = m.observe(0, &[tile(1e4, 2.0e4, 9e4)], 10);
        assert_eq!(report.layers[0].sessions_left, Some(0.0));
        assert_eq!(report.sessions_to_failure, Some(0.0));
    }

    #[test]
    fn alerts_escalate_once_per_rule() {
        let mut m = monitor();
        // Window at 40% of fresh → warn (threshold 0.5), not critical.
        let report = m.observe(0, &[tile(1e4, 4.6e4, 9e4)], 10);
        let window: Vec<_> =
            report.alerts.iter().filter(|a| a.rule == "health.window_fraction").collect();
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].severity, AlertSeverity::Warn);
        assert_eq!(window[0].threshold, 0.5);
        // Same state again: no repeat.
        let report = m.observe(1, &[tile(1e4, 4.5e4, 9e4)], 10);
        assert!(report.alerts.iter().all(|a| a.rule != "health.window_fraction"));
        // Crossing critical escalates exactly once.
        let report = m.observe(2, &[tile(1e4, 3.0e4, 9e4)], 10);
        let window: Vec<_> =
            report.alerts.iter().filter(|a| a.rule == "health.window_fraction").collect();
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].severity, AlertSeverity::Critical);
        let report = m.observe(3, &[tile(1e4, 2.9e4, 9e4)], 10);
        assert!(report.alerts.iter().all(|a| a.rule != "health.window_fraction"));
    }

    #[test]
    fn tuning_budget_rule_watches_iteration_fraction() {
        let mut m = monitor();
        let healthy = tile(1e4, 1e5, 9e4);
        assert!(m.observe(0, &[healthy], 80).alerts.is_empty(), "80/150 is under warn");
        let report = m.observe(1, &[healthy], 100);
        assert_eq!(report.alerts.len(), 1);
        assert_eq!(report.alerts[0].rule, "health.tuning_budget");
        assert_eq!(report.alerts[0].severity, AlertSeverity::Warn);
        let report = m.observe(2, &[healthy], 140);
        assert_eq!(report.alerts[0].severity, AlertSeverity::Critical);
    }

    #[test]
    fn report_emits_gauges_and_alerts_through_recorder() {
        use memaging_obs::{Event, MemorySink, Recorder};
        let (sink, handle) = MemorySink::new();
        let recorder = Recorder::new(vec![Box::new(sink)]);
        let mut m = monitor();
        m.observe(0, &[tile(1e4, 9e4, 9e4)], 10);
        let report = m.observe(1, &[tile(1e4, 4.0e4, 9e4)], 10);
        assert!(!report.alerts.is_empty());
        report.emit(&recorder);
        let events = handle.events();
        let gauge_names: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::Gauge { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        for expected in [
            "aging.r_max_ohms{layer=0}",
            "aging.r_min_ohms{layer=0}",
            "wear.worn_devices{layer=0}",
            "wear.pulses{layer=0}",
            "health.window_fraction{layer=0}",
            "health.shrink_rate_ohms_per_session{layer=0}",
            "health.sessions_left{layer=0}",
            "health.sessions_to_failure",
        ] {
            assert!(gauge_names.iter().any(|n| n == expected), "missing gauge {expected}");
        }
        assert!(
            events.iter().any(|e| matches!(e, Event::Alert { .. })),
            "alerts must reach the sinks"
        );
        let snapshot = recorder.snapshot().unwrap();
        assert!(
            snapshot.counters.iter().any(|(name, total)| name.starts_with("alerts.") && *total > 0),
            "alert counters must land in the registry: {:?}",
            snapshot.counters
        );
    }
}
