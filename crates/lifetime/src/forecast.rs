//! Per-tile wear-trajectory forecasting: velocity and acceleration by
//! windowed regression over a deterministic series, and the
//! sessions-to-critical extrapolation behind the serve tier's predictive
//! burn-rate alerts ("tile 3 crosses critical in ~k sessions").
//!
//! This upgrades the global linear shrinkage fit in [`crate::HealthMonitor`]
//! to *per-tile* trajectories: the input is the raw tail of a
//! `memaging-obs` `SeriesStore` series (integer fixed-point values keyed by
//! maintenance-boundary sequence, e.g. window fraction in parts-per-billion),
//! and the math is a plain ordinary-least-squares fit over at most
//! [`DEFAULT_FORECAST_WINDOW`] points.
//!
//! ## Determinism
//!
//! The fit is sequential over an already bit-deterministic input (the
//! series store's raw tail), iterating in ascending-sequence order with no
//! reductions whose order could vary — so the forecast for the same trace
//! is bit-identical at any worker/thread count, which `exp_serve` and the
//! analyzer integration test assert.

use std::fmt::Write as _;

/// Default regression window (points of the series raw tail).
pub const DEFAULT_FORECAST_WINDOW: usize = 16;

/// One tile's fitted wear trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileTrend {
    /// Points the fit used (≤ the configured window).
    pub samples: usize,
    /// Sequence key of the newest point.
    pub latest_seq: u64,
    /// Newest raw value (the caller's fixed-point scale, e.g. ppb).
    pub value: u64,
    /// Fitted first derivative: value units per sequence step. Negative
    /// while the window shrinks.
    pub velocity: f64,
    /// Fitted second derivative: change of velocity per sequence step
    /// (difference of half-window slopes over the gap between their mean
    /// sequence keys; 0 when either half has fewer than 2 points).
    pub acceleration: f64,
    /// Sequence steps until the trajectory crosses `critical`:
    /// `Some(0.0)` when already at or below it, `Some(k)` from the linear
    /// extrapolation when the velocity is negative, `None` when flat or
    /// improving (no crossing forecast).
    pub sessions_to_critical: Option<f64>,
}

impl TileTrend {
    /// Renders the trend as a JSON object (floats via the shortest
    /// round-trip formatter, `null` for an absent crossing).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"samples\":{},\"latest_seq\":{},\"value\":{},\"velocity\":{},\
             \"acceleration\":{},\"sessions_to_critical\":",
            self.samples, self.latest_seq, self.value, self.velocity, self.acceleration
        );
        match self.sessions_to_critical {
            Some(k) => {
                let _ = write!(out, "{k}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// Ordinary-least-squares slope of `points` (`None` when fewer than 2
/// points or all sequence keys coincide), plus the mean sequence key.
fn slope(points: &[(u64, u64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|&(x, _)| x as f64).sum::<f64>() / n;
    let mean_y = points.iter().map(|&(_, y)| y as f64).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &(x, y) in points {
        let dx = x as f64 - mean_x;
        sxx += dx * dx;
        sxy += dx * (y as f64 - mean_y);
    }
    (sxx > 0.0).then(|| (sxy / sxx, mean_x))
}

/// Fits the newest `window` points of a series raw tail (ascending
/// `(seq, value)` pairs, as returned by `SeriesSnapshot::raw_points`) and
/// extrapolates to the `critical` threshold. Returns `None` for an empty
/// series.
pub fn trend(points: &[(u64, u64)], window: usize, critical: u64) -> Option<TileTrend> {
    let tail = &points[points.len().saturating_sub(window.max(1))..];
    let &(latest_seq, value) = tail.last()?;
    let velocity = slope(tail).map_or(0.0, |(v, _)| v);
    // Second derivative from the two half-window slopes, spaced by the gap
    // between their mean sequence keys.
    let acceleration = match (slope(&tail[..tail.len() / 2]), slope(&tail[tail.len() / 2..])) {
        (Some((v1, x1)), Some((v2, x2))) if x2 > x1 => (v2 - v1) / (x2 - x1),
        _ => 0.0,
    };
    let sessions_to_critical = if value <= critical {
        Some(0.0)
    } else if velocity < 0.0 {
        Some((value - critical) as f64 / -velocity)
    } else {
        None
    };
    Some(TileTrend {
        samples: tail.len(),
        latest_seq,
        value,
        velocity,
        acceleration,
        sessions_to_critical,
    })
}

/// Picks the worst tile from `(tile, trend)` pairs: the one crossing
/// critical soonest (an absent crossing counts as never), ties broken by
/// the lower current value, then the lower tile index. `None` for an empty
/// list.
pub fn worst_tile(trends: &[(usize, TileTrend)]) -> Option<(usize, TileTrend)> {
    trends
        .iter()
        .min_by(|(ta, a), (tb, b)| {
            let ka = a.sessions_to_critical.unwrap_or(f64::INFINITY);
            let kb = b.sessions_to_critical.unwrap_or(f64::INFINITY);
            ka.total_cmp(&kb).then(a.value.cmp(&b.value)).then(ta.cmp(tb))
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_has_no_trend() {
        assert_eq!(trend(&[], DEFAULT_FORECAST_WINDOW, 0), None);
    }

    #[test]
    fn single_point_is_flat() {
        let t = trend(&[(5, 100)], 16, 30).unwrap();
        assert_eq!((t.samples, t.latest_seq, t.value), (1, 5, 100));
        assert_eq!((t.velocity, t.acceleration), (0.0, 0.0));
        assert_eq!(t.sessions_to_critical, None, "flat trajectory never crosses");
        // ...unless it already has.
        assert_eq!(trend(&[(5, 20)], 16, 30).unwrap().sessions_to_critical, Some(0.0));
    }

    #[test]
    fn linear_decline_extrapolates_exactly() {
        // value = 1000 - 10·seq: velocity −10, crossing 700 from value 900
        // (seq 10) in exactly 20 steps.
        let points: Vec<(u64, u64)> = (1..=10).map(|s| (s, 1000 - 10 * s)).collect();
        let t = trend(&points, 16, 700).unwrap();
        assert_eq!(t.samples, 10);
        assert!((t.velocity + 10.0).abs() < 1e-9, "{t:?}");
        assert!(t.acceleration.abs() < 1e-9, "linear data: no acceleration {t:?}");
        let k = t.sessions_to_critical.unwrap();
        assert!((k - 20.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn quadratic_decline_shows_negative_acceleration() {
        // value = 10000 - seq²: slope steepens, so the late-half slope is
        // more negative than the early-half slope.
        let points: Vec<(u64, u64)> = (1..=12).map(|s| (s, 10_000 - s * s)).collect();
        let t = trend(&points, 16, 0).unwrap();
        assert!(t.velocity < 0.0);
        assert!(t.acceleration < 0.0, "{t:?}");
        // d²(−s²)/ds² = −2.
        assert!((t.acceleration + 2.0).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn window_limits_the_fit() {
        // Old history rises, recent window falls: only the tail counts.
        let mut points: Vec<(u64, u64)> = (0..20).map(|s| (s, 100 + s)).collect();
        points.extend((20..24).map(|s| (s, 200 - 5 * (s - 19))));
        let t = trend(&points, 4, 0).unwrap();
        assert_eq!(t.samples, 4);
        assert!((t.velocity + 5.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn improving_trajectory_never_crosses() {
        let points: Vec<(u64, u64)> = (1..=8).map(|s| (s, 100 + s)).collect();
        let t = trend(&points, 16, 50).unwrap();
        assert!(t.velocity > 0.0);
        assert_eq!(t.sessions_to_critical, None);
    }

    #[test]
    fn worst_tile_orders_by_crossing_then_value_then_index() {
        let mk = |value, k: Option<f64>| TileTrend {
            samples: 2,
            latest_seq: 9,
            value,
            velocity: -1.0,
            acceleration: 0.0,
            sessions_to_critical: k,
        };
        assert_eq!(worst_tile(&[]), None);
        let trends = vec![(0, mk(500, None)), (1, mk(400, Some(7.0))), (2, mk(300, Some(3.0)))];
        assert_eq!(worst_tile(&trends).unwrap().0, 2, "soonest crossing wins");
        let ties = vec![(0, mk(500, Some(3.0))), (1, mk(400, Some(3.0)))];
        assert_eq!(worst_tile(&ties).unwrap().0, 1, "lower value breaks the tie");
        let exact = vec![(3, mk(400, Some(3.0))), (5, mk(400, Some(3.0)))];
        assert_eq!(worst_tile(&exact).unwrap().0, 3, "lower tile index breaks the tie");
    }

    #[test]
    fn trend_json_shape() {
        let t = trend(&[(1, 100), (2, 90)], 16, 50).unwrap();
        assert_eq!(
            t.to_json(),
            "{\"samples\":2,\"latest_seq\":2,\"value\":90,\"velocity\":-10,\
             \"acceleration\":0,\"sessions_to_critical\":4}"
        );
        let flat = trend(&[(1, 100)], 16, 50).unwrap();
        assert!(flat.to_json().ends_with("\"sessions_to_critical\":null}"), "{}", flat.to_json());
    }
}
