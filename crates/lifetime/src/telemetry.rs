//! Aggregation helpers over lifetime results: the conv-vs-FC split of
//! Fig. 11 and the lifetime-ratio summary of Table I.

use memaging_nn::LayerKind;

use crate::simulator::LifetimeResult;
use crate::strategy::Strategy;

/// Mean aged upper resistance bound split by layer kind at one checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct KindAgingPoint {
    /// Applications served before the checkpoint.
    pub applications: u64,
    /// Mean `R_aged,max` over all convolutional layers, ohms.
    pub conv_mean_r_max: f64,
    /// Mean `R_aged,max` over all fully-connected layers, ohms.
    pub fc_mean_r_max: f64,
}

/// Splits a lifetime result's per-layer aging series into the conv vs FC
/// averages of paper Fig. 11. `kinds` is the mappable-layer kind list of the
/// simulated network (`Network::mappable_kinds`).
///
/// Layers of other kinds are ignored; a network without conv (or FC) layers
/// reports `NaN`-free zero means for that group.
pub fn conv_vs_fc_series(result: &LifetimeResult, kinds: &[LayerKind]) -> Vec<KindAgingPoint> {
    let conv_idx: Vec<usize> = kinds
        .iter()
        .enumerate()
        .filter(|(_, k)| **k == LayerKind::Convolution)
        .map(|(i, _)| i)
        .collect();
    let fc_idx: Vec<usize> = kinds
        .iter()
        .enumerate()
        .filter(|(_, k)| **k == LayerKind::FullyConnected)
        .map(|(i, _)| i)
        .collect();
    let mean = |idx: &[usize], bounds: &[f64]| -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter().filter_map(|&i| bounds.get(i)).sum::<f64>() / idx.len() as f64
    };
    result
        .sessions
        .iter()
        .map(|s| KindAgingPoint {
            applications: s.applications_before,
            conv_mean_r_max: mean(&conv_idx, &s.per_layer_mean_r_max),
            fc_mean_r_max: mean(&fc_idx, &s.per_layer_mean_r_max),
        })
        .collect()
}

/// One row of the paper's Table I lifetime comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeComparison {
    /// Strategy and its absolute lifetime in applications.
    pub entries: Vec<(Strategy, u64)>,
    /// Lifetime of each strategy normalized to the first entry (the paper
    /// normalizes to T+T).
    pub ratios: Vec<f64>,
}

/// Builds the normalized lifetime comparison of Table I from per-strategy
/// results. The first result is the baseline (ratio 1.0).
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn compare_lifetimes(results: &[LifetimeResult]) -> LifetimeComparison {
    assert!(!results.is_empty(), "need at least one result");
    let baseline = results[0].lifetime_applications.max(1) as f64;
    let entries: Vec<(Strategy, u64)> =
        results.iter().map(|r| (r.strategy, r.lifetime_applications)).collect();
    let ratios = results.iter().map(|r| r.lifetime_applications as f64 / baseline).collect();
    LifetimeComparison { entries, ratios }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::SessionRecord;
    use memaging_crossbar::ProgramStats;

    fn result(strategy: Strategy, lifetimes: u64, bounds: Vec<Vec<f64>>) -> LifetimeResult {
        let sessions = bounds
            .into_iter()
            .enumerate()
            .map(|(i, b)| SessionRecord {
                session: i,
                applications_before: i as u64 * 100,
                map_stats: ProgramStats::default(),
                windows: Vec::new(),
                remapped: i == 0,
                pre_tune_accuracy: 0.9,
                tuning_iterations: 5,
                tuning_pulses: 10,
                accuracy: 0.95,
                converged: true,
                per_layer_mean_r_max: b,
                worn_out_devices: 0,
            })
            .collect();
        LifetimeResult { strategy, sessions, lifetime_applications: lifetimes, failed: true }
    }

    #[test]
    fn conv_fc_split_averages_correct_layers() {
        let kinds = [LayerKind::Convolution, LayerKind::Convolution, LayerKind::FullyConnected];
        let r = result(Strategy::TT, 100, vec![vec![90e3, 80e3, 99e3], vec![70e3, 60e3, 98e3]]);
        let series = conv_vs_fc_series(&r, &kinds);
        assert_eq!(series.len(), 2);
        assert!((series[0].conv_mean_r_max - 85e3).abs() < 1.0);
        assert!((series[0].fc_mean_r_max - 99e3).abs() < 1.0);
        assert!((series[1].conv_mean_r_max - 65e3).abs() < 1.0);
    }

    #[test]
    fn conv_fc_split_handles_missing_kinds() {
        let kinds = [LayerKind::FullyConnected];
        let r = result(Strategy::TT, 10, vec![vec![99e3]]);
        let series = conv_vs_fc_series(&r, &kinds);
        assert_eq!(series[0].conv_mean_r_max, 0.0);
        assert!((series[0].fc_mean_r_max - 99e3).abs() < 1.0);
    }

    #[test]
    fn conv_only_network_reports_zero_fc_mean() {
        let kinds = [LayerKind::Convolution, LayerKind::Convolution];
        let r = result(Strategy::StAt, 50, vec![vec![40e3, 60e3], vec![30e3, 50e3]]);
        let series = conv_vs_fc_series(&r, &kinds);
        assert_eq!(series.len(), 2);
        assert!((series[0].conv_mean_r_max - 50e3).abs() < 1.0);
        assert_eq!(series[0].fc_mean_r_max, 0.0);
        assert!((series[1].conv_mean_r_max - 40e3).abs() < 1.0);
        assert_eq!(series[1].fc_mean_r_max, 0.0);
        assert!(series.iter().all(|p| p.fc_mean_r_max.is_finite()));
    }

    #[test]
    fn empty_kind_list_yields_zero_means_per_checkpoint() {
        let kinds: [LayerKind; 0] = [];
        let r = result(Strategy::StT, 20, vec![vec![90e3], vec![80e3]]);
        let series = conv_vs_fc_series(&r, &kinds);
        // One point per session, with both group means collapsing to 0.0
        // (never NaN) because neither group has any member layers.
        assert_eq!(series.len(), 2);
        for (i, point) in series.iter().enumerate() {
            assert_eq!(point.applications, i as u64 * 100);
            assert_eq!(point.conv_mean_r_max, 0.0);
            assert_eq!(point.fc_mean_r_max, 0.0);
        }
    }

    #[test]
    fn no_sessions_yields_empty_series() {
        let kinds = [LayerKind::Convolution, LayerKind::FullyConnected];
        let r = result(Strategy::TT, 0, vec![]);
        assert!(conv_vs_fc_series(&r, &kinds).is_empty());
    }

    #[test]
    fn lifetime_ratios_normalize_to_first() {
        let results = vec![
            result(Strategy::TT, 100, vec![]),
            result(Strategy::StT, 600, vec![]),
            result(Strategy::StAt, 1100, vec![]),
        ];
        let cmp = compare_lifetimes(&results);
        assert_eq!(cmp.entries[0], (Strategy::TT, 100));
        assert!((cmp.ratios[0] - 1.0).abs() < 1e-12);
        assert!((cmp.ratios[1] - 6.0).abs() < 1e-12);
        assert!((cmp.ratios[2] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let results = vec![result(Strategy::TT, 0, vec![]), result(Strategy::StT, 5, vec![])];
        let cmp = compare_lifetimes(&results);
        assert!(cmp.ratios.iter().all(|r| r.is_finite()));
    }
}
