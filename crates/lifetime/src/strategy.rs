//! The three deployment strategies compared in the paper's Table I.

use memaging_crossbar::MappingStrategy;

/// A software-training + hardware-mapping strategy.
///
/// These are the three scenarios of the paper's evaluation:
///
/// | variant | training | mapping |
/// |---|---|---|
/// | [`Strategy::TT`]   | traditional (L2)        | fresh ranges |
/// | [`Strategy::StT`]  | skewed (eqs. 8–10)      | fresh ranges |
/// | [`Strategy::StAt`] | skewed (eqs. 8–10)      | aging-aware (Fig. 8) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Traditional training + online tuning ("T+T").
    TT,
    /// Skewed-weight training + online tuning ("ST+T").
    StT,
    /// Skewed-weight training + aging-aware mapping + online tuning
    /// ("ST+AT") — the paper's full proposal.
    StAt,
}

impl Strategy {
    /// All strategies in the paper's table order.
    pub const ALL: [Strategy; 3] = [Strategy::TT, Strategy::StT, Strategy::StAt];

    /// Whether the software training stage uses the skewed regularizer.
    pub fn uses_skewed_training(self) -> bool {
        !matches!(self, Strategy::TT)
    }

    /// The hardware mapping strategy.
    pub fn mapping(self) -> MappingStrategy {
        match self {
            Strategy::TT | Strategy::StT => MappingStrategy::Fresh,
            Strategy::StAt => MappingStrategy::AgingAware,
        }
    }

    /// The paper's label for this strategy.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::TT => "T+T",
            Strategy::StT => "ST+T",
            Strategy::StAt => "ST+AT",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Strategy::TT.label(), "T+T");
        assert_eq!(Strategy::StT.label(), "ST+T");
        assert_eq!(Strategy::StAt.label(), "ST+AT");
        assert_eq!(Strategy::StAt.to_string(), "ST+AT");
    }

    #[test]
    fn training_and_mapping_flags() {
        assert!(!Strategy::TT.uses_skewed_training());
        assert!(Strategy::StT.uses_skewed_training());
        assert!(Strategy::StAt.uses_skewed_training());
        assert_eq!(Strategy::TT.mapping(), MappingStrategy::Fresh);
        assert_eq!(Strategy::StT.mapping(), MappingStrategy::Fresh);
        assert_eq!(Strategy::StAt.mapping(), MappingStrategy::AgingAware);
    }

    #[test]
    fn all_lists_each_once() {
        assert_eq!(Strategy::ALL.len(), 3);
        let set: std::collections::HashSet<_> = Strategy::ALL.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
