//! HTTP surface of the fleet, plugged into the monitor server via
//! [`memaging_monitor::HttpHandler`]:
//!
//! * `POST /infer` — identical wire format to the single-replica serve
//!   tier (same parser, same response body); the router decides which
//!   replica serves the request.
//! * `GET /fleet` — the router's per-replica view: lifecycle state,
//!   routed share, wear snapshot, and live boundary/remap counters.
//! * `GET /serve/stats` — fleet admission counters plus one full
//!   [`memaging_serve::ServeStats`] row per replica.
//! * `GET /serve/latency` — per-replica latency histograms.
//! * `GET /wear/attribution` — per-replica wear-attribution ledgers
//!   (each tagged with its replica id).

use std::sync::Arc;
use std::time::Duration;

use memaging_monitor::{HttpHandler, HttpRequest, HttpResponse};
use memaging_serve::{infer_error_json, infer_response_json, parse_infer_input, InferRequest};

use crate::service::FleetService;

/// The fleet's [`HttpHandler`]; register with
/// [`memaging_monitor::MonitorServer::bind_with_handlers`].
pub struct FleetHandler {
    service: Arc<FleetService>,
    /// Deadline attached to HTTP-submitted requests (`None`: no
    /// deadline).
    default_deadline: Option<Duration>,
}

impl FleetHandler {
    /// A handler serving `service`, attaching `default_deadline` to each
    /// HTTP request.
    pub fn new(service: Arc<FleetService>, default_deadline: Option<Duration>) -> Self {
        FleetHandler { service, default_deadline }
    }
}

impl HttpHandler for FleetHandler {
    fn handle(&self, request: &HttpRequest) -> Option<HttpResponse> {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/infer") => Some(self.infer(&request.body)),
            ("GET", "/fleet") => Some(HttpResponse::json(200, self.service.fleet_json())),
            ("GET", "/serve/stats") => Some(HttpResponse::json(200, self.service.stats_json())),
            ("GET", "/serve/latency") => Some(HttpResponse::json(200, self.service.latency_json())),
            ("GET", "/wear/attribution") => {
                Some(HttpResponse::json(200, self.service.wear_attribution_json()))
            }
            _ => None,
        }
    }
}

impl FleetHandler {
    fn infer(&self, body: &[u8]) -> HttpResponse {
        let input = match parse_infer_input(body) {
            Ok(input) => input,
            Err(reason) => {
                return HttpResponse::json(400, infer_error_json(&format!("bad input: {reason}")))
            }
        };
        let request = InferRequest { input, deadline: self.default_deadline };
        match self.service.infer(request) {
            Ok(response) => HttpResponse::json(200, infer_response_json(&response)),
            Err(e) => HttpResponse::json(e.http_status(), infer_error_json(&e.to_string())),
        }
    }
}
