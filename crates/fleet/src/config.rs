//! Fleet configuration: replica count, router policy, per-replica stress
//! heterogeneity, and the retire/rejoin thresholds.

use memaging_serve::{ServeConfig, ServeError};

/// How the fleet router assigns admitted blocks to replicas. All three
/// policies are deterministic functions of the admission sequence and of
/// wear snapshots taken at maintenance boundaries — never of wall-clock
/// time — so any policy replays bit-identically at any worker-thread
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Least-forecast-burn-rate: route each block to the active replica
    /// with the lowest projected stress (its last published generation's
    /// stress total plus its measured per-request burn rate times the
    /// requests it would absorb), with a block-rotating tie-break. The
    /// lifetime-maximizing policy.
    WearBalance,
    /// Rotate over active replicas by block index. The fairness baseline
    /// the wear-imbalance gate compares against.
    RoundRobin,
    /// Stay on the current replica until it retires, then move to the
    /// lowest-id active replica. The worst-case (no balancing) baseline.
    Sticky,
}

impl RouterPolicy {
    /// Parses a CLI `--router` value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown policy name.
    pub fn parse(name: &str) -> Result<RouterPolicy, String> {
        match name {
            "wear" | "wear-balance" => Ok(RouterPolicy::WearBalance),
            "round-robin" => Ok(RouterPolicy::RoundRobin),
            "sticky" => Ok(RouterPolicy::Sticky),
            other => Err(format!(
                "unknown router policy `{other}` (expected wear, round-robin, or sticky)"
            )),
        }
    }

    /// The policy's stable wire label (`wear` / `round-robin` / `sticky`).
    pub fn label(&self) -> &'static str {
        match self {
            RouterPolicy::WearBalance => "wear",
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::Sticky => "sticky",
        }
    }
}

/// Configuration of a [`crate::FleetService`]: `replicas` independent
/// serving cells (each a full [`ServeConfig`] deployment with its own
/// wear ledger, forecaster, and background remap worker) behind one
/// admission queue and a deterministic router.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of replicas (independent crossbar deployments).
    pub replicas: usize,
    /// Routing policy. CLI flag: `--router`.
    pub router: RouterPolicy,
    /// Per-replica multiplier on [`ServeConfig::stress_per_read`] —
    /// physically, an endurance/temperature gradient across chips (no two
    /// fabricated crossbars age identically). Empty means homogeneous
    /// (all 1.0); otherwise the length must equal `replicas`.
    pub stress_scale: Vec<f64>,
    /// Retire trigger: when the hottest active replica's published worst
    /// window fraction falls to or below this, the router drains it and
    /// force-remaps it in the background while its siblings absorb the
    /// traffic. `0.0` disables retiring. A replica is never retired while
    /// it is the only active one.
    pub retire_fraction: f64,
    /// How many admission blocks a retiring replica sits out before
    /// rejoining.
    pub retire_blocks: u64,
    /// Minimum blocks between two retires of the same replica (window
    /// fractions are monotone hardware wear — a remap does not restore
    /// them, so without a cooldown a hot replica would re-retire at every
    /// block).
    pub retire_cooldown_blocks: u64,
    /// The per-replica serving configuration. `maintenance_interval` is
    /// also the router's block quantum: each block of that many
    /// consecutive admissions is routed whole to one replica, so a routed
    /// block is exactly one local maintenance interval.
    pub serve: ServeConfig,
}

impl FleetConfig {
    /// A fleet of `replicas` cells with the wear-balancing router,
    /// homogeneous stress, and retiring disabled.
    pub fn new(replicas: usize, serve: ServeConfig) -> Self {
        FleetConfig {
            replicas,
            router: RouterPolicy::WearBalance,
            stress_scale: Vec::new(),
            retire_fraction: 0.0,
            retire_blocks: 4,
            retire_cooldown_blocks: 16,
            serve,
        }
    }

    /// Validates the fleet-level ranges plus the embedded [`ServeConfig`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] with a field-specific reason.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.replicas == 0 {
            return Err(ServeError::InvalidConfig { reason: "replicas must be nonzero".into() });
        }
        if !self.stress_scale.is_empty() && self.stress_scale.len() != self.replicas {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "stress_scale has {} entries for {} replicas",
                    self.stress_scale.len(),
                    self.replicas
                ),
            });
        }
        if self.stress_scale.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(ServeError::InvalidConfig {
                reason: "stress_scale entries must be finite and > 0".into(),
            });
        }
        if !self.retire_fraction.is_finite() || !(0.0..1.0).contains(&self.retire_fraction) {
            return Err(ServeError::InvalidConfig {
                reason: "retire_fraction must lie in [0, 1)".into(),
            });
        }
        if self.retire_fraction > 0.0 && self.retire_blocks == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "retire_blocks must be nonzero when retiring is enabled".into(),
            });
        }
        self.serve.validate()
    }

    /// Replica `r`'s serving config: the shared [`ServeConfig`] with its
    /// read-disturb stress scaled by `stress_scale[r]`.
    pub fn replica_serve(&self, r: usize) -> ServeConfig {
        let mut config = self.serve;
        if let Some(scale) = self.stress_scale.get(r) {
            config.stress_per_read *= scale;
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_policies_round_trip_through_labels() {
        for policy in [RouterPolicy::WearBalance, RouterPolicy::RoundRobin, RouterPolicy::Sticky] {
            assert_eq!(RouterPolicy::parse(policy.label()).unwrap(), policy);
        }
        assert_eq!(RouterPolicy::parse("wear-balance").unwrap(), RouterPolicy::WearBalance);
        assert!(RouterPolicy::parse("random").unwrap_err().contains("unknown router policy"));
    }

    #[test]
    fn default_fleet_config_validates() {
        assert!(FleetConfig::new(4, ServeConfig::default()).validate().is_ok());
    }

    #[test]
    fn bad_fleet_configs_are_rejected() {
        let base = || FleetConfig::new(2, ServeConfig::default());
        for bad in [
            FleetConfig { replicas: 0, ..base() },
            FleetConfig { stress_scale: vec![1.0], ..base() },
            FleetConfig { stress_scale: vec![1.0, 0.0], ..base() },
            FleetConfig { stress_scale: vec![1.0, f64::NAN], ..base() },
            FleetConfig { retire_fraction: 1.0, ..base() },
            FleetConfig { retire_fraction: -0.1, ..base() },
            FleetConfig { retire_fraction: 0.5, retire_blocks: 0, ..base() },
            FleetConfig { serve: ServeConfig { max_batch: 0, ..ServeConfig::default() }, ..base() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn stress_scale_multiplies_per_replica_stress() {
        let mut config = FleetConfig::new(2, ServeConfig::default());
        config.serve.stress_per_read = 2.0;
        config.stress_scale = vec![1.0, 1.5];
        assert_eq!(config.replica_serve(0).stress_per_read, 2.0);
        assert_eq!(config.replica_serve(1).stress_per_read, 3.0);
        config.stress_scale.clear();
        assert_eq!(config.replica_serve(1).stress_per_read, 2.0);
    }
}
