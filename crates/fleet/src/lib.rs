//! # memaging-fleet
//!
//! A sharded replica fleet for memristor crossbar serving: N independent
//! [`memaging_serve::ServeEngine`] deployments — each with its own wear
//! ledger, lifetime forecaster, and background remap worker — behind one
//! admission queue and a deterministic wear-balancing router.
//!
//! The paper's aging story is per-chip: read disturb wears a crossbar's
//! devices, the resistance windows shrink, and aging-aware remapping buys
//! the mapping time. A deployment, though, serves from a *fleet* of chips,
//! and no two of them age at the same rate (process variation, thermal
//! gradients, unequal load). This crate adds the fleet layer:
//!
//! * **Wear-balancing router** ([`RouterPolicy::WearBalance`]): each block
//!   of one maintenance interval's worth of consecutive admissions is
//!   routed whole to the active replica with the least projected stress —
//!   its last published generation's stress total plus its *measured*
//!   burn rate times the load it would absorb. `round-robin` and `sticky`
//!   baselines are selectable for comparison; the `exp_fleet` bench gates
//!   that wear balancing yields a strictly tighter max/mean replica-stress
//!   ratio than round-robin on the same admitted sequence.
//! * **Retire/rejoin** ([`FleetConfig::retire_fraction`]): when the
//!   hottest replica's resistance window degrades past the threshold, the
//!   router drains it, force-remaps it in the background while its
//!   siblings absorb the traffic, and rejoins it a configured number of
//!   blocks later.
//! * **Per-replica observability**: every wear checkpoint, forecast gauge,
//!   and tile series a replica emits is namespaced `replica{r}.`, its
//!   attribution ledger is tagged with the replica id, and the
//!   [`FleetHandler`] serves `GET /fleet` plus per-replica rows under
//!   `/serve/stats`, `/serve/latency`, and `/wear/attribution`.
//!
//! ## Determinism
//!
//! Routing decisions are pure functions of the admission block index and
//! of wear snapshots read from **published mapping generations** at
//! deterministic boundaries — never of wall-clock time or live (racing)
//! network state. The same admission sequence replays bit-identically at
//! any worker-thread count and any replica count, and a one-replica fleet
//! serves byte-identical outputs to the single-replica
//! [`memaging_serve::InferenceService`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod http;
mod service;

pub use config::{FleetConfig, RouterPolicy};
pub use http::FleetHandler;
pub use service::{FleetReport, FleetService, ReplicaReport, ReplicaView};
