//! The fleet service: one admission queue, N independent serving replicas
//! (each a full [`ServeEngine`] deployment with its own wear ledger,
//! forecaster, and background remap worker), and the deterministic router
//! in between.
//!
//! ## Thread layout
//!
//! * **Clients** call [`FleetService::infer`]: admission control happens
//!   inline on the shared queue (one global admission sequence), then the
//!   client parks on its response slot.
//! * **Fleet dispatcher** (`memaging-fleet-dispatch`) — the router. Pops
//!   admitted requests in sequence order and routes each **block** (one
//!   maintenance interval's worth of consecutive admissions) whole to one
//!   replica, so a routed block is exactly one local maintenance interval
//!   on its replica. Within the block it forms batches and fans them out
//!   over the shared `par` worker pool exactly like the single-replica
//!   dispatcher.
//! * **Per-replica maintenance** (`memaging-fleet-maint-{r}`) — consumes
//!   that replica's boundary jobs (wear accrual + generation publish +
//!   optional live remap) and retire-time force-remap jobs.
//!
//! ## Determinism contract
//!
//! Routing is a pure function of the admission block index and of wear
//! snapshots read from **published mapping generations** — never from the
//! live network state, which maintenance threads mutate concurrently. The
//! dispatcher is each cell's only job producer, so "the newest generation
//! whose boundary job has been sent" is a deterministic read: the cell can
//! never hold a newer one. Run the same admission sequence at any
//! worker-thread count and every routing decision, per-request output, and
//! per-replica final wear state is bit-identical — `exp_fleet` and
//! `integration_fleet` assert exactly that. With one replica the router
//! degenerates to the identity and the served outputs are byte-identical
//! to [`memaging_serve::InferenceService`] on the same sequence.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use memaging_crossbar::CrossbarNetwork;
use memaging_dataset::Dataset;
use memaging_lifetime::WearLedger;
use memaging_nn::Network;
use memaging_obs::Recorder;
use memaging_par::SlotPool;
use memaging_serve::{
    declare_serve_histograms, dispatch_batch, form_batch, GenerationCell, InferRequest,
    InferResponse, MappingGeneration, RequestQueue, ResponseSlot, ServeEngine, ServeError,
    ServeStats, WorkerCtx,
};

use crate::config::{FleetConfig, RouterPolicy};

/// One job on a replica's maintenance channel.
enum ReplicaJob {
    /// Accrue one local interval's wear and publish the next generation
    /// (the fleet analogue of the serve tier's boundary job).
    Boundary {
        /// Local boundary index = generation id to publish.
        id: u64,
        /// Admitted requests routed to this replica in the interval.
        interval_requests: u64,
        /// `false` on retire flushes and the shutdown flush.
        allow_remap: bool,
    },
    /// Retire-time background remap: force the aging-aware sweep now and
    /// ack when it finished so the router can rejoin the replica.
    ForceRemap {
        /// Signalled (once) after the remap completes.
        ack: mpsc::Sender<()>,
    },
}

/// A replica's routing lifecycle state.
enum ReplicaState {
    /// In the routing rotation.
    Active,
    /// Drained: a force-remap is running in the background while siblings
    /// absorb the traffic.
    Retiring {
        /// First block at which the router may rejoin the replica.
        until_block: u64,
        /// Completion signal of the background remap; rejoin blocks on it.
        ack: mpsc::Receiver<()>,
    },
}

/// Dispatcher-owned runtime state of one replica.
struct ReplicaRt {
    job_tx: mpsc::Sender<ReplicaJob>,
    generations: Arc<GenerationCell>,
    stats: Arc<ServeStats>,
    /// Stress total of generation 0 — the baseline the measured burn rate
    /// is taken against.
    deploy_stress: f64,
    /// Requests routed to this replica so far.
    routed: u64,
    /// Full blocks routed so far == local maintenance intervals started.
    blocks: u64,
    /// Next local boundary id to send (== highest id sent + 1, so the
    /// newest generation the cell can hold is `next_boundary - 1`).
    next_boundary: u64,
    /// Last refreshed wear snapshot: (generation id, total stress, worst
    /// window fraction). Read only from published generations.
    snap: (u64, f64, f64),
    state: ReplicaState,
    /// Block of the last retire, for the cooldown.
    last_retire_block: Option<u64>,
    retires: u64,
}

/// A point-in-time routing view of one replica, published by the
/// dispatcher at block starts (and once more after the shutdown flush).
/// Rendered by `GET /fleet`.
#[derive(Debug, Clone)]
pub struct ReplicaView {
    /// `"active"` or `"retiring"`.
    pub state: &'static str,
    /// Requests routed to the replica (as of the last block start).
    pub routed: u64,
    /// Blocks (= local maintenance intervals) routed to the replica.
    pub blocks: u64,
    /// Times the replica has been retired for a background remap.
    pub retires: u64,
    /// Generation id of the last wear snapshot.
    pub snapshot_generation: u64,
    /// Total accrued tile stress (seconds) at that snapshot.
    pub snapshot_stress: f64,
    /// Worst-tile window fraction at that snapshot.
    pub worst_window_fraction: f64,
    /// When retiring: the first block at which the replica may rejoin.
    pub rejoin_block: Option<u64>,
}

/// Final report of one replica of a shut-down fleet.
pub struct ReplicaReport {
    /// Replica id.
    pub replica: usize,
    /// The replica's final hardware state — the ground truth the
    /// determinism bench asserts on.
    pub network: CrossbarNetwork,
    /// Requests served to completion by this replica.
    pub served: u64,
    /// Requests expired before dispatch while routed to this replica.
    pub expired: u64,
    /// Batches dispatched to this replica.
    pub batches: u64,
    /// Local maintenance boundaries processed.
    pub boundaries: u64,
    /// Aging-aware remaps performed (drift-armed and retire-forced).
    pub remaps: u64,
    /// Requests routed to this replica.
    pub routed: u64,
    /// Times the replica was retired for a background remap.
    pub retires: u64,
    /// The replica's wear-attribution ledger (tile keys namespaced by
    /// replica id).
    pub attribution: WearLedger,
}

/// Final report of a shut-down fleet.
pub struct FleetReport {
    /// Requests admitted (fleet-wide, one global sequence).
    pub admitted: u64,
    /// Requests rejected at admission (queue full).
    pub rejected_full: u64,
    /// Per-replica reports, indexed by replica id.
    pub replicas: Vec<ReplicaReport>,
}

impl FleetReport {
    /// Fleet-wide served count.
    pub fn served(&self) -> u64 {
        self.replicas.iter().map(|r| r.served).sum()
    }

    /// Per-replica total accrued stress (seconds), indexed by replica id.
    pub fn stress_per_replica(&self) -> Vec<f64> {
        self.replicas.iter().map(|r| r.network.tile_stress().iter().sum()).collect()
    }

    /// Max/mean ratio of per-replica total stress — the fleet imbalance
    /// the wear-balancing router minimizes (1.0 is perfectly balanced).
    pub fn wear_imbalance(&self) -> f64 {
        let stress = self.stress_per_replica();
        let mean = stress.iter().sum::<f64>() / stress.len().max(1) as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        stress.iter().copied().fold(0.0f64, f64::max) / mean
    }
}

/// Client-visible handle of one deployed replica.
struct ReplicaHandle {
    stats: Arc<ServeStats>,
    ledger: Arc<Mutex<WearLedger>>,
    generations: Arc<GenerationCell>,
    maintenance: Option<JoinHandle<ServeEngine>>,
}

/// The deployed replica fleet. Create with [`FleetService::deploy`], stop
/// with [`FleetService::shutdown`]. See the module docs for the thread
/// layout and determinism contract.
pub struct FleetService {
    queue: Arc<RequestQueue>,
    admitted: AtomicU64,
    rejected_full: AtomicU64,
    replicas: Vec<ReplicaHandle>,
    view: Arc<Mutex<Vec<ReplicaView>>>,
    router: RouterPolicy,
    quantum: u64,
    input_dim: usize,
    recorder: Recorder,
    dispatcher: Option<JoinHandle<()>>,
}

impl FleetService {
    /// Deploys one replica per network (each performing its own initial
    /// aging-aware mapping against `calib`) and starts the router and the
    /// per-replica maintenance threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a bad config or a
    /// `networks`/`replicas` count mismatch; [`ServeError::Internal`] from
    /// the initial mappings or thread spawns.
    pub fn deploy(
        networks: Vec<CrossbarNetwork>,
        calib: Dataset,
        config: FleetConfig,
        recorder: Recorder,
    ) -> Result<FleetService, ServeError> {
        config.validate()?;
        if networks.len() != config.replicas {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "{} networks supplied for {} replicas",
                    networks.len(),
                    config.replicas
                ),
            });
        }
        declare_serve_histograms(&recorder);
        let mut handles = Vec::with_capacity(config.replicas);
        let mut rts = Vec::with_capacity(config.replicas);
        let mut base: Option<Network> = None;
        let mut input_dim = 0;
        for (r, network) in networks.into_iter().enumerate() {
            let stats = Arc::new(ServeStats::with_buckets(config.serve.latency_buckets));
            let (engine, initial) = ServeEngine::deploy_replica(
                network,
                calib.clone(),
                config.replica_serve(r),
                recorder.clone(),
                Arc::clone(&stats),
                Some(r),
            )?;
            if base.is_none() {
                input_dim = engine.input_dim();
                base = Some(engine.software_clone());
            }
            let ledger = engine.ledger();
            let generations = Arc::new(GenerationCell::default());
            generations.publish(Arc::clone(&initial));
            let (job_tx, job_rx) = mpsc::channel::<ReplicaJob>();
            let maintenance = {
                let generations = Arc::clone(&generations);
                let recorder = recorder.clone();
                std::thread::Builder::new()
                    .name(format!("memaging-fleet-maint-{r}"))
                    .spawn(move || {
                        replica_maintenance_loop(engine, &job_rx, &generations, &recorder)
                    })
                    .map_err(|e| ServeError::Internal { reason: e.to_string() })?
            };
            rts.push(ReplicaRt {
                job_tx,
                generations: Arc::clone(&generations),
                stats: Arc::clone(&stats),
                deploy_stress: initial.total_stress,
                routed: 0,
                blocks: 0,
                next_boundary: 1,
                snap: (0, initial.total_stress, initial.worst_window_fraction),
                state: ReplicaState::Active,
                last_retire_block: None,
                retires: 0,
            });
            handles.push(ReplicaHandle {
                stats,
                ledger,
                generations,
                maintenance: Some(maintenance),
            });
        }
        let view = Arc::new(Mutex::new(rts.iter().map(ReplicaRt::view).collect::<Vec<_>>()));
        let queue = Arc::new(RequestQueue::new(config.serve.queue_capacity));
        let dispatcher = {
            let queue = Arc::clone(&queue);
            let view = Arc::clone(&view);
            let recorder = recorder.clone();
            let base = base.expect("replicas is nonzero by validate()");
            let config = config.clone();
            std::thread::Builder::new()
                .name("memaging-fleet-dispatch".into())
                .spawn(move || fleet_dispatch_loop(&queue, rts, &view, &recorder, &base, &config))
                .map_err(|e| ServeError::Internal { reason: e.to_string() })?
        };
        Ok(FleetService {
            queue,
            admitted: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            replicas: handles,
            view,
            router: config.router,
            quantum: config.serve.maintenance_interval,
            input_dim,
            recorder,
            dispatcher: Some(dispatcher),
        })
    }

    /// Submits one request and blocks until it is served, rejected, or
    /// expired. Identical admission semantics to
    /// [`memaging_serve::InferenceService::infer`]; which replica serves
    /// it is the router's (deterministic) decision.
    ///
    /// # Errors
    ///
    /// As [`memaging_serve::InferenceService::infer`].
    pub fn infer(&self, request: InferRequest) -> Result<InferResponse, ServeError> {
        if request.input.len() != self.input_dim {
            return Err(ServeError::BadInput {
                reason: format!(
                    "expected {} input features, got {}",
                    self.input_dim,
                    request.input.len()
                ),
            });
        }
        if request.input.iter().any(|v| !v.is_finite()) {
            return Err(ServeError::BadInput { reason: "non-finite input value".into() });
        }
        let slot = Arc::new(ResponseSlot::default());
        let deadline = request.deadline.map(|d| Instant::now() + d);
        let seq = match self.queue.admit(request.input, deadline, Arc::clone(&slot)) {
            Ok(seq) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                seq
            }
            Err(e) => {
                if matches!(e, ServeError::QueueFull { .. }) {
                    self.rejected_full.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        let _span = self.recorder.trace_span("serve.request", seq);
        slot.wait()
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The routing policy in force.
    pub fn router(&self) -> RouterPolicy {
        self.router
    }

    /// The expected number of input features per request.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Replica `r`'s live serving statistics.
    pub fn replica_stats(&self, r: usize) -> Option<&ServeStats> {
        self.replicas.get(r).map(|h| &*h.stats)
    }

    /// Replica `r`'s currently published mapping generation.
    pub fn current_generation(&self, r: usize) -> Option<Arc<MappingGeneration>> {
        self.replicas.get(r).and_then(|h| h.generations.current())
    }

    /// A snapshot of replica `r`'s wear-attribution ledger.
    pub fn wear_attribution(&self, r: usize) -> Option<WearLedger> {
        self.replicas
            .get(r)
            .map(|h| h.ledger.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }

    /// The router's per-replica view (as of the last block start).
    pub fn fleet_view(&self) -> Vec<ReplicaView> {
        self.view.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Fleet-wide admission counters plus per-replica
    /// [`ServeStats`] rows, as the JSON body of `GET /serve/stats`.
    pub fn stats_json(&self) -> String {
        let mut out = String::with_capacity(256 * (1 + self.replicas.len()));
        let _ = write!(
            out,
            "{{\"admitted\":{},\"rejected_full\":{},\"router\":\"{}\",\"replicas\":[",
            self.admitted.load(Ordering::Relaxed),
            self.rejected_full.load(Ordering::Relaxed),
            self.router.label(),
        );
        for (r, handle) in self.replicas.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"replica\":{r},\"stats\":{}}}", handle.stats.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Per-replica latency histograms, as the JSON body of
    /// `GET /serve/latency`.
    pub fn latency_json(&self) -> String {
        let mut out = String::with_capacity(512 * (1 + self.replicas.len()));
        out.push_str("{\"replicas\":[");
        for (r, handle) in self.replicas.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"replica\":{r},\"latency\":{}}}", handle.stats.latency_json());
        }
        out.push_str("]}");
        out
    }

    /// Per-replica wear-attribution ledgers, as the JSON body of
    /// `GET /wear/attribution`.
    pub fn wear_attribution_json(&self) -> String {
        let mut out = String::with_capacity(256 * (1 + self.replicas.len()));
        out.push_str("{\"replicas\":[");
        for (r, handle) in self.replicas.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push_str(&handle.ledger.lock().unwrap_or_else(PoisonError::into_inner).to_json());
        }
        out.push_str("]}");
        out
    }

    /// The router's view of the fleet, as the JSON body of `GET /fleet`:
    /// per replica its lifecycle state, routed share, wear snapshot, and
    /// live boundary/remap/served counters.
    pub fn fleet_json(&self) -> String {
        let views = self.fleet_view();
        let mut out = String::with_capacity(192 * (1 + views.len()));
        let _ = write!(
            out,
            "{{\"router\":\"{}\",\"quantum\":{},\"replicas\":[",
            self.router.label(),
            self.quantum,
        );
        for (r, view) in views.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            let stats = &self.replicas[r].stats;
            let _ = write!(
                out,
                "{{\"replica\":{r},\"state\":\"{}\",\"routed\":{},\"blocks\":{},\"retires\":{},",
                view.state, view.routed, view.blocks, view.retires,
            );
            match view.rejoin_block {
                Some(block) => {
                    let _ = write!(out, "\"rejoin_block\":{block},");
                }
                None => out.push_str("\"rejoin_block\":null,"),
            }
            let _ = write!(
                out,
                "\"snapshot_generation\":{},\"snapshot_stress\":{},\
                 \"worst_window_fraction\":{},\"served\":{},\"boundaries\":{},\"remaps\":{}}}",
                view.snapshot_generation,
                view.snapshot_stress,
                view.worst_window_fraction,
                stats.served.load(Ordering::Relaxed),
                stats.boundaries.load(Ordering::Relaxed),
                stats.remaps.load(Ordering::Relaxed),
            );
        }
        out.push_str("]}");
        out
    }

    /// Stops admission, drains every queued request, flushes each
    /// replica's final partial interval's wear, joins all threads, and
    /// returns the final report.
    pub fn shutdown(mut self) -> FleetReport {
        self.queue.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            if let Err(payload) = dispatcher.join() {
                std::panic::resume_unwind(payload);
            }
        }
        // The dispatcher published a final view after its shutdown flush.
        let views = self.fleet_view();
        let mut replicas = Vec::with_capacity(self.replicas.len());
        for (r, mut handle) in std::mem::take(&mut self.replicas).into_iter().enumerate() {
            let engine = match handle.maintenance.take().map(JoinHandle::join) {
                Some(Ok(engine)) => engine,
                Some(Err(payload)) => std::panic::resume_unwind(payload),
                None => unreachable!("maintenance threads exist until shutdown"),
            };
            replicas.push(ReplicaReport {
                replica: r,
                network: engine.into_network(),
                served: handle.stats.served.load(Ordering::Relaxed),
                expired: handle.stats.expired.load(Ordering::Relaxed),
                batches: handle.stats.batches.load(Ordering::Relaxed),
                boundaries: handle.stats.boundaries.load(Ordering::Relaxed),
                remaps: handle.stats.remaps.load(Ordering::Relaxed),
                routed: views[r].routed,
                retires: views[r].retires,
                attribution: handle.ledger.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            });
        }
        FleetReport {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            replicas,
        }
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        if self.dispatcher.is_none() && self.replicas.is_empty() {
            return; // Shut down properly.
        }
        self.queue.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        for handle in &mut self.replicas {
            if let Some(maintenance) = handle.maintenance.take() {
                let _ = maintenance.join();
            }
        }
    }
}

impl ReplicaRt {
    fn view(&self) -> ReplicaView {
        let (state, rejoin_block) = match &self.state {
            ReplicaState::Active => ("active", None),
            ReplicaState::Retiring { until_block, .. } => ("retiring", Some(*until_block)),
        };
        ReplicaView {
            state,
            routed: self.routed,
            blocks: self.blocks,
            retires: self.retires,
            snapshot_generation: self.snap.0,
            snapshot_stress: self.snap.1,
            worst_window_fraction: self.snap.2,
            rejoin_block,
        }
    }

    /// Deterministic wear snapshot: the newest generation whose boundary
    /// job has been sent. The dispatcher is the cell's only job producer,
    /// so the cell can never hold a newer one — `wait_for` returns exactly
    /// generation `next_boundary - 1` (blocking only while that boundary
    /// itself is still being processed).
    fn refresh_snapshot(&mut self) {
        let generation = self.generations.wait_for(self.next_boundary - 1);
        self.snap = (generation.id, generation.total_stress, generation.worst_window_fraction);
    }

    /// Projected stress after absorbing one more block: the snapshot's
    /// stress total plus the measured per-request burn rate (snapshot
    /// stress minus deploy stress, over the requests the snapshot covers)
    /// times the requests routed past the snapshot plus one full block.
    fn projected_stress(&self, quantum: u64) -> f64 {
        let (id, stress, _) = self.snap;
        let covered = id * quantum;
        let rate = if covered > 0 { (stress - self.deploy_stress) / covered as f64 } else { 0.0 };
        let pending = self.routed - covered;
        stress + rate * (pending + quantum) as f64
    }
}

fn publish_view(view: &Mutex<Vec<ReplicaView>>, reps: &[ReplicaRt]) {
    let mut slots = view.lock().unwrap_or_else(PoisonError::into_inner);
    for (slot, rt) in slots.iter_mut().zip(reps) {
        *slot = rt.view();
    }
}

/// The router: pops admitted requests in sequence order, routes each block
/// whole to one replica, and serves its batches on the shared worker pool.
fn fleet_dispatch_loop(
    queue: &RequestQueue,
    mut reps: Vec<ReplicaRt>,
    view: &Mutex<Vec<ReplicaView>>,
    recorder: &Recorder,
    base: &Network,
    config: &FleetConfig,
) {
    let quantum = config.serve.maintenance_interval;
    let mut pool: SlotPool<WorkerCtx> = SlotPool::new();
    let mut current_block: Option<u64> = None;
    let mut target: usize = 0;
    // The target's local interval index for the current block (its block
    // count at the block start).
    let mut local_interval: u64 = 0;
    let mut sticky: usize = 0;
    while let Some(first) = queue.pop_blocking() {
        let block = first.seq / quantum;
        if current_block != Some(block) {
            // Admission sequences are popped in order, so each block's
            // requests are contiguous: one routing decision covers them
            // all.
            current_block = Some(block);
            target = begin_block(block, &mut reps, config, recorder, &mut sticky);
            local_interval = reps[target].blocks;
            reps[target].blocks += 1;
            publish_view(view, &reps);
        }
        let boundary_seq = (block + 1) * quantum;
        let (batch, linger_us) =
            form_batch(queue, first, boundary_seq, config.serve.max_batch, config.serve.max_linger);
        let rt = &mut reps[target];
        rt.stats.latency().linger.record(0, linger_us);
        recorder.observe("serve.linger_us", linger_us as f64);
        rt.routed += batch.len() as u64;
        // Ask the target's maintenance thread for every generation up to
        // this block's local interval, then wait for it — the same
        // boundary pipeline as the single-replica dispatcher, per replica.
        while rt.next_boundary <= local_interval {
            let job = ReplicaJob::Boundary {
                id: rt.next_boundary,
                interval_requests: quantum,
                allow_remap: true,
            };
            if rt.job_tx.send(job).is_err() {
                break; // Maintenance died; entries fail below.
            }
            rt.next_boundary += 1;
        }
        let generation = rt.generations.wait_for(local_interval);
        dispatch_batch(
            batch,
            target,
            &generation,
            &mut pool,
            base,
            &rt.stats,
            recorder,
            config.serve.quantized,
        );
    }
    // Queue closed and drained: resolve in-flight retires, then flush each
    // replica's final partial interval's wear so the reported hardware
    // state covers every routed request.
    for rt in &mut reps {
        if let ReplicaState::Retiring { ack, .. } =
            std::mem::replace(&mut rt.state, ReplicaState::Active)
        {
            let _ = ack.recv();
        }
        let flushed = (rt.next_boundary - 1) * quantum;
        if rt.routed > flushed {
            let job = ReplicaJob::Boundary {
                id: rt.next_boundary,
                interval_requests: rt.routed - flushed,
                allow_remap: false,
            };
            if rt.job_tx.send(job).is_ok() {
                rt.next_boundary += 1;
            }
        }
    }
    publish_view(view, &reps);
    // Dropping the senders ends each maintenance loop after it has
    // processed every queued job.
}

/// Block-start routing: rejoin due replicas, retire the hottest eligible
/// one, and pick the block's target. Every input is deterministic — the
/// block index, dispatcher-local counters, and published-generation
/// snapshots.
fn begin_block(
    block: u64,
    reps: &mut [ReplicaRt],
    config: &FleetConfig,
    recorder: &Recorder,
    sticky: &mut usize,
) -> usize {
    let quantum = config.serve.maintenance_interval;
    // 1. Rejoin replicas whose sit-out elapsed, blocking on the remap ack:
    //    a rejoined replica always serves its post-remap state.
    for rt in reps.iter_mut() {
        let due = matches!(&rt.state, ReplicaState::Retiring { until_block, .. } if block >= *until_block);
        if due {
            if let ReplicaState::Retiring { ack, .. } =
                std::mem::replace(&mut rt.state, ReplicaState::Active)
            {
                let _ = ack.recv();
            }
        }
    }
    let mut active: Vec<usize> = reps
        .iter()
        .enumerate()
        .filter(|(_, rt)| matches!(rt.state, ReplicaState::Active))
        .map(|(r, _)| r)
        .collect();
    // 2. Refresh wear snapshots where a decision below needs them.
    let need_snapshots = config.retire_fraction > 0.0
        || (config.router == RouterPolicy::WearBalance && active.len() > 1);
    if need_snapshots {
        for &r in &active {
            reps[r].refresh_snapshot();
        }
    }
    // 3. Retire the hottest eligible active replica (never the last one):
    //    flush its completed intervals so the forced remap sees all
    //    accrued wear, then hand it the remap job and take it out of the
    //    rotation.
    if config.retire_fraction > 0.0 && active.len() > 1 {
        let eligible = active.iter().copied().filter(|&r| {
            let rt = &reps[r];
            rt.snap.0 > 0
                && rt.snap.2 <= config.retire_fraction
                && rt
                    .last_retire_block
                    .is_none_or(|last| block - last >= config.retire_cooldown_blocks)
        });
        let hottest =
            eligible.min_by(|&a, &b| reps[a].snap.2.total_cmp(&reps[b].snap.2).then(a.cmp(&b)));
        if let Some(r) = hottest {
            let rt = &mut reps[r];
            while rt.next_boundary <= rt.blocks {
                let job = ReplicaJob::Boundary {
                    id: rt.next_boundary,
                    interval_requests: quantum,
                    allow_remap: false,
                };
                if rt.job_tx.send(job).is_err() {
                    break;
                }
                rt.next_boundary += 1;
            }
            let (ack_tx, ack_rx) = mpsc::channel();
            if rt.job_tx.send(ReplicaJob::ForceRemap { ack: ack_tx }).is_ok() {
                rt.state = ReplicaState::Retiring {
                    until_block: block + config.retire_blocks,
                    ack: ack_rx,
                };
                rt.last_retire_block = Some(block);
                rt.retires += 1;
                recorder.counter("fleet.retire", 1);
                active.retain(|&a| a != r);
            }
        }
    }
    // 4. Route the block.
    match config.router {
        RouterPolicy::RoundRobin => active[(block % active.len() as u64) as usize],
        RouterPolicy::Sticky => {
            if !active.contains(sticky) {
                *sticky = active[0];
            }
            *sticky
        }
        RouterPolicy::WearBalance => {
            if active.len() == 1 {
                return active[0];
            }
            // Warmup: until every active replica has absorbed a block, the
            // burn rates aren't comparable — deal in index order.
            if let Some(&cold) = active.iter().find(|&&r| reps[r].blocks == 0) {
                return cold;
            }
            // Least projected stress, scanning from a block-rotated start
            // so exact ties don't starve higher indices.
            let start = (block % active.len() as u64) as usize;
            let mut best = active[start];
            let mut best_cost = reps[best].projected_stress(quantum);
            for i in 1..active.len() {
                let r = active[(start + i) % active.len()];
                let cost = reps[r].projected_stress(quantum);
                if cost < best_cost {
                    best = r;
                    best_cost = cost;
                }
            }
            best
        }
    }
}

/// Per-replica maintenance: the serve tier's boundary pipeline plus the
/// retire-time force-remap job.
fn replica_maintenance_loop(
    mut engine: ServeEngine,
    jobs: &mpsc::Receiver<ReplicaJob>,
    generations: &GenerationCell,
    recorder: &Recorder,
) -> ServeEngine {
    let replica = engine.replica().unwrap_or(0);
    while let Ok(job) = jobs.recv() {
        match job {
            ReplicaJob::Boundary { id, interval_requests, allow_remap } => {
                match engine.boundary(id, interval_requests) {
                    Ok(generation) => generations.publish(generation),
                    Err(e) => {
                        // The router is (or will be) waiting on this
                        // generation id: republish the previous weights
                        // under the new id so serving continues, and raise
                        // the alarm.
                        recorder.alert(
                            memaging_obs::AlertSeverity::Critical,
                            "serve.boundary_failed",
                            id as f64,
                            0.0,
                            &format!(
                                "replica {replica} boundary {id} failed, serving stale mapping: {e}"
                            ),
                        );
                        let prior =
                            generations.current().expect("generation 0 published at deploy");
                        generations.publish(Arc::new(MappingGeneration {
                            id,
                            weights: prior.weights.clone(),
                            worst_window_fraction: prior.worst_window_fraction,
                            total_stress: prior.total_stress,
                            remaps: prior.remaps,
                        }));
                    }
                }
                if allow_remap {
                    // Runs *after* the publish: the sweep overlaps live
                    // traffic on the sibling replicas and this one.
                    engine.maybe_remap();
                }
            }
            ReplicaJob::ForceRemap { ack } => {
                engine.force_remap();
                let _ = ack.send(());
            }
        }
    }
    engine
}
