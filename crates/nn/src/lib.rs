//! # memaging-nn
//!
//! A from-scratch neural-network training stack for the *memaging*
//! workspace (reproduction of "Aging-aware Lifetime Enhancement for
//! Memristor-based Neuromorphic Computing", DATE 2019).
//!
//! The paper needs a training loop whose *cost function* can be modified —
//! its central software technique replaces L2 regularization with a
//! two-segment skewed penalty (eqs. 8–10) that pushes weights toward small
//! values, so the mapped memristor resistances stay large and age slowly.
//! No mainstream Rust NN framework exposes that hook cleanly, so this crate
//! implements exactly what's required:
//!
//! * [`Layer`] implementations: [`Dense`], [`Conv2d`], [`Pool2d`],
//!   [`Activation`], [`Dropout`] — all operating on flattened
//!   `[batch, features]` matrices, whose weight matrices are the objects a
//!   crossbar stores;
//! * [`Network`]: a validated sequential container with forward/backward and
//!   weight export/import for hardware mapping;
//! * [`loss`]: softmax cross-entropy (eq. 1) and accuracy;
//! * [`Regularizer`]: [`L2`] (baseline `T`) and [`SkewedL2`] (proposed `ST`,
//!   eqs. 8–10), dispatched per *mappable layer* so `βᵢ = c·σᵢ` varies by
//!   layer as in the paper's Table II;
//! * [`Sgd`]: momentum SGD applying data + regularizer gradients (eq. 3);
//! * [`models`]: LeNet-5 and VGG-16 builders (faithful structure) plus
//!   scaled variants for simulation-budget experiments;
//! * [`train`] / [`evaluate`]: the mini-batch training loop.
//!
//! # Example: skewed-weight training
//!
//! ```
//! use memaging_dataset::{Dataset, SyntheticSpec};
//! use memaging_nn::{models, train, NoRegularizer, SkewedL2, TrainConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut data = Dataset::gaussian_blobs(&SyntheticSpec::small(4, 7))?;
//! data.normalize();
//! let mut net = models::mlp(&[144, 24, 4], &mut StdRng::seed_from_u64(0))?;
//! // Stage 1: ordinary training to learn sigma_i per layer.
//! let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
//! train(&mut net, &data, &cfg, &NoRegularizer)?;
//! // Stage 2: skewed training with beta_i = c * sigma_i (paper Table II).
//! let reg = SkewedL2::from_layer_stds(&net.weight_stds(), 1.0, 5e-3, 5e-4);
//! train(&mut net, &data, &cfg, &reg)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod activation;
mod checkpoint;
mod conv;
mod dense;
mod dropout;
mod error;
mod layer;
mod network;
mod optimizer;
mod pool;
mod qforward;
mod regularizer;
mod schedule;
mod trainer;

pub mod loss;
pub mod models;

pub use activation::{Activation, ActivationFn};
pub use checkpoint::{read_tensors, write_tensors};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::NnError;
pub use layer::{Layer, LayerKind, Mode, ParamKind};
pub use network::Network;
pub use optimizer::Sgd;
pub use pool::{Pool2d, PoolKind};
pub use qforward::{QuantScratch, QuantizedNet};
pub use regularizer::{
    applies_to, NoRegularizer, PerLayer, Regularizer, SkewedL2, WeightPenalty, L2,
};
pub use schedule::LrSchedule;
pub use trainer::{evaluate, train, train_with_recorder, EpochStats, TrainConfig, TrainReport};
