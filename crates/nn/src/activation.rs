//! Element-wise activation layers: ReLU, Tanh, Sigmoid.

use memaging_tensor::Tensor;

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};

/// The supported element-wise nonlinearities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationFn {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
}

impl ActivationFn {
    /// Applies the function to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActivationFn::Relu => x.max(0.0),
            ActivationFn::Tanh => x.tanh(),
            ActivationFn::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`.
    ///
    /// All three supported functions admit this form, which lets the layer
    /// cache only its output.
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            ActivationFn::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationFn::Tanh => 1.0 - y * y,
            ActivationFn::Sigmoid => y * (1.0 - y),
        }
    }
}

/// An element-wise activation layer.
///
/// # Examples
///
/// ```
/// use memaging_nn::{Activation, ActivationFn, Layer, Mode};
/// use memaging_tensor::Tensor;
///
/// # fn main() -> Result<(), memaging_nn::NnError> {
/// let mut relu = Activation::new(ActivationFn::Relu, 3);
/// let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], [1, 3])?;
/// let y = relu.forward(&x, Mode::Eval)?;
/// assert_eq!(y.as_slice(), &[0.0, 0.5, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Activation {
    func: ActivationFn,
    features: usize,
    cached_output: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer over `features`-wide rows.
    pub fn new(func: ActivationFn, features: usize) -> Self {
        Activation { func, features, cached_output: None }
    }

    /// The wrapped function.
    pub fn func(&self) -> ActivationFn {
        self.func
    }
}

impl Layer for Activation {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        match self.func {
            ActivationFn::Relu => "relu",
            ActivationFn::Tanh => "tanh",
            ActivationFn::Sigmoid => "sigmoid",
        }
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.dims()[1] != self.features {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: self.features,
                actual: if input.rank() == 2 { input.dims()[1] } else { input.len() },
            });
        }
        let f = self.func;
        let out = input.map(|x| f.apply(x));
        if mode == Mode::Train {
            self.cached_output = Some(out.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let out = self
            .cached_output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: self.name() })?;
        let f = self.func;
        let deriv = out.map(|y| f.derivative_from_output(y));
        Ok(grad_out.mul(&deriv)?)
    }

    fn in_features(&self) -> usize {
        self.features
    }

    fn out_features(&self) -> usize {
        self.features
    }

    fn eval_in_place(&self, data: &mut [f32]) -> bool {
        let f = self.func;
        for x in data {
            *x = f.apply(*x);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut l = Activation::new(ActivationFn::Relu, 4);
        let x = Tensor::from_vec(vec![-2.0, -0.0, 0.5, 3.0], [1, 4]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut l = Activation::new(ActivationFn::Sigmoid, 3);
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], [1, 3]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert!(y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let mut l = Activation::new(ActivationFn::Tanh, 2);
        let x = Tensor::from_vec(vec![1.3, -1.3], [1, 2]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn numeric_gradient_check_all_functions() {
        for func in [ActivationFn::Relu, ActivationFn::Tanh, ActivationFn::Sigmoid] {
            let mut l = Activation::new(func, 5);
            // Stay away from ReLU's kink at 0.
            let x = Tensor::from_vec(vec![-1.5, -0.7, 0.3, 0.9, 2.1], [1, 5]).unwrap();
            l.forward(&x, Mode::Train).unwrap();
            let dx = l.backward(&Tensor::ones([1, 5])).unwrap();
            let eps = 1e-3f32;
            for i in 0..5 {
                let mut xp = x.clone();
                xp.as_mut_slice()[i] += eps;
                let mut xm = x.clone();
                xm.as_mut_slice()[i] -= eps;
                let yp = l.forward(&xp, Mode::Eval).unwrap().sum();
                let ym = l.forward(&xm, Mode::Eval).unwrap().sum();
                let numeric = (yp - ym) / (2.0 * eps);
                assert!((numeric - dx.as_slice()[i]).abs() < 1e-2, "{func:?} grad mismatch at {i}");
            }
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut l = Activation::new(ActivationFn::Relu, 2);
        assert!(l.backward(&Tensor::ones([1, 2])).is_err());
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut l = Activation::new(ActivationFn::Relu, 2);
        l.forward(&Tensor::ones([1, 2]), Mode::Eval).unwrap();
        assert!(l.backward(&Tensor::ones([1, 2])).is_err());
    }

    #[test]
    fn rejects_wrong_width() {
        let mut l = Activation::new(ActivationFn::Relu, 3);
        assert!(l.forward(&Tensor::ones([1, 4]), Mode::Eval).is_err());
    }
}
