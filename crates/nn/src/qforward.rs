//! Quantized inference path: fixed-point replicas of the dense layers plus
//! an allocation-free forward loop.
//!
//! [`QuantizedNet`] snapshots every fully-connected layer of a [`Network`]
//! as a [`QuantizedMatrix`] (see `memaging_tensor::quant` for the grid and
//! the determinism argument) together with its f32 bias. The forward loop
//! ping-pongs activations between two scratch buffers: dense layers run the
//! integer kernel with fused dequantization + bias, shape-preserving layers
//! (activations, inference-time dropout) apply in place via
//! [`Layer::eval_in_place`], and anything else (convolutions, pooling)
//! falls back to the layer's f32 [`Layer::forward`] — the quantized path
//! accelerates the FC-dominated evaluation loops without needing to model
//! every layer kind.
//!
//! The f32 forward pass stays untouched as the bit-exactness oracle; the
//! crossbar and serve tiers gate the quantized path against it with
//! classification-equality asserts.

use memaging_tensor::quant::{
    qmm_into, qmm_rows_into, quantize_acts_into, quantize_rows_into, QuantizedMatrix,
};
use memaging_tensor::Tensor;

use crate::error::NnError;
use crate::layer::{LayerKind, Mode};
use crate::network::Network;

/// A dense layer's quantized weights plus its (digital-periphery) bias.
#[derive(Debug, Clone, PartialEq)]
struct QuantizedDense {
    weights: QuantizedMatrix,
    bias: Vec<f32>,
}

/// Fixed-point snapshot of a network's fully-connected layers, indexed by
/// network layer position (`None` for layers the quantized path does not
/// accelerate).
///
/// The snapshot is a pure function of the network's weight bits, so two
/// workers quantizing the same generation build bit-identical snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantizedNet {
    layers: Vec<Option<QuantizedDense>>,
}

impl QuantizedNet {
    /// Number of network layers covered by the snapshot.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of layers running on the integer kernel.
    pub fn quantized_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.is_some()).count()
    }

    /// Replaces the quantized weights of an already-covered dense layer,
    /// keeping its bias. The incremental candidate sweep uses this to
    /// install per-candidate LUT-quantized matrices without touching the
    /// f32 network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `layer_idx` is out of range,
    /// the layer is not covered by the snapshot, or the matrix shape
    /// differs from the covered layer's.
    pub fn set_layer_weights(
        &mut self,
        layer_idx: usize,
        weights: QuantizedMatrix,
    ) -> Result<(), NnError> {
        let Some(Some(qd)) = self.layers.get_mut(layer_idx) else {
            return Err(NnError::InvalidConfig {
                reason: format!("layer {layer_idx} is not covered by the quantized snapshot"),
            });
        };
        if (weights.rows(), weights.cols()) != (qd.weights.rows(), qd.weights.cols()) {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "quantized weights {}x{} do not match layer {layer_idx} ({}x{})",
                    weights.rows(),
                    weights.cols(),
                    qd.weights.rows(),
                    qd.weights.cols()
                ),
            });
        }
        qd.weights = weights;
        Ok(())
    }
}

/// Per-worker scratch for [`Network::forward_from_quantized`]: integer
/// activation codes and the two f32 ping-pong buffers. Reuse one per
/// worker to keep allocation off the per-request hot path.
#[derive(Debug, Default)]
pub struct QuantScratch {
    codes: Vec<i16>,
    row_steps: Vec<f64>,
    ping: Vec<f32>,
    pong: Vec<f32>,
}

impl QuantScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        QuantScratch::default()
    }
}

impl Network {
    /// Builds the quantized snapshot of every fully-connected layer.
    ///
    /// Convolutions keep `None` entries and evaluate through the f32 path —
    /// at this repository's scale the FC layers hold ~90% of the mapped
    /// devices and all of the candidate-sweep replay cost.
    pub fn quantize_weights(&self) -> QuantizedNet {
        let layers = self
            .layers()
            .iter()
            .map(|layer| match (layer.kind(), layer.weight_matrix(), layer.bias_vector()) {
                (LayerKind::FullyConnected, Some(w), Some(b)) if w.rank() == 2 => {
                    let q = QuantizedMatrix::from_f32(w.as_slice(), w.dims()[0], w.dims()[1])
                        .expect("weight matrix length matches its own dims");
                    Some(QuantizedDense { weights: q, bias: b.as_slice().to_vec() })
                }
                _ => None,
            })
            .collect();
        QuantizedNet { layers }
    }

    /// Re-quantizes the `mappable_index`-th mappable layer of an existing
    /// snapshot after its f32 weights changed (the incremental engine's
    /// dirty-layer resync). Layers the snapshot does not cover (e.g.
    /// convolutions) are left as f32 fallbacks.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `mappable_index` is out of
    /// range or the snapshot was built for a different layer stack.
    pub fn requantize_layer(
        &self,
        snapshot: &mut QuantizedNet,
        mappable_index: usize,
    ) -> Result<(), NnError> {
        let Some(layer_idx) = self.mappable_layer_index(mappable_index) else {
            return Err(NnError::InvalidConfig {
                reason: format!("mappable layer index {mappable_index} out of range"),
            });
        };
        if snapshot.layers.len() != self.num_layers() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "quantized snapshot covers {} layers, network has {}",
                    snapshot.layers.len(),
                    self.num_layers()
                ),
            });
        }
        let layer = &self.layers()[layer_idx];
        if let (LayerKind::FullyConnected, Some(w), Some(b)) =
            (layer.kind(), layer.weight_matrix(), layer.bias_vector())
        {
            if w.rank() == 2 {
                let q = QuantizedMatrix::from_f32(w.as_slice(), w.dims()[0], w.dims()[1])
                    .expect("weight matrix length matches its own dims");
                snapshot.layers[layer_idx] =
                    Some(QuantizedDense { weights: q, bias: b.as_slice().to_vec() });
            }
        }
        Ok(())
    }

    /// Quantized [`Network::forward`]: runs the full stack on a flat
    /// `[batch × in_features]` activation buffer, returning the logits as a
    /// borrowed slice of `scratch` (no output allocation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward_from_quantized`].
    pub fn forward_quantized<'s>(
        &mut self,
        snapshot: &QuantizedNet,
        input: &[f32],
        batch: usize,
        scratch: &'s mut QuantScratch,
    ) -> Result<&'s [f32], NnError> {
        self.forward_from_quantized(0, snapshot, input, batch, scratch)
    }

    /// Batch-composition-safe quantized forward: every activation row is
    /// quantized with its **own** range and step at every dense layer
    /// ([`memaging_tensor::quant::quantize_rows_into`] /
    /// [`memaging_tensor::quant::qmm_rows_into`]), so row `i` of the output
    /// is bit-for-bit what [`Network::forward_quantized`] returns for that
    /// row served alone with `batch = 1`. This is the serving tier's batched
    /// dispatch kernel: the dispatcher may group admitted requests into
    /// batches of any size without changing a single response byte, while
    /// the integer matmul amortizes its setup over the whole batch.
    ///
    /// (The shared-step [`Network::forward_quantized`] quantizes the whole
    /// batch against one range, which is faster for the sweep engine's fixed
    /// calibration batches but makes outputs depend on batch composition —
    /// unacceptable under racy admission.)
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a zero batch or a snapshot
    /// shape mismatch, [`NnError::BadInput`] for a wrong input length;
    /// propagates fallback layer errors.
    pub fn forward_quantized_rows<'s>(
        &mut self,
        snapshot: &QuantizedNet,
        input: &[f32],
        batch: usize,
        scratch: &'s mut QuantScratch,
    ) -> Result<&'s [f32], NnError> {
        if batch == 0 {
            return Err(NnError::InvalidConfig {
                reason: "forward_quantized_rows needs a positive batch".to_string(),
            });
        }
        if snapshot.layers.len() != self.num_layers() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "quantized snapshot covers {} layers, network has {}",
                    snapshot.layers.len(),
                    self.num_layers()
                ),
            });
        }
        let width = if self.num_layers() > 0 {
            self.layers()[0].in_features()
        } else {
            input.len() / batch
        };
        if input.len() != batch * width {
            return Err(NnError::BadInput {
                layer: "quantized-forward",
                expected: width,
                actual: input.len() / batch,
            });
        }
        scratch.ping.clear();
        scratch.ping.extend_from_slice(input);
        self.run_quantized_layers_impl(0, snapshot, batch, width, true, scratch)
    }

    /// Quantized [`Network::forward_from`]: replays layers `start..` on an
    /// activation that already passed through the prefix. Fully-connected
    /// layers run the integer kernel, shape-preserving layers apply in
    /// place, everything else falls back to the layer's f32 forward.
    ///
    /// The result depends only on the input bits and the snapshot, never on
    /// the thread count — integer accumulation is exact and the f32
    /// fallbacks use the order-pinned kernels of `memaging_tensor::ops`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `start` exceeds the layer
    /// count, the snapshot shape disagrees with the network, or the input
    /// length is not `batch × in_features(start)`; propagates fallback
    /// layer errors.
    pub fn forward_from_quantized<'s>(
        &mut self,
        start: usize,
        snapshot: &QuantizedNet,
        input: &[f32],
        batch: usize,
        scratch: &'s mut QuantScratch,
    ) -> Result<&'s [f32], NnError> {
        if start > self.num_layers() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "forward_from_quantized start {start} exceeds {} layers",
                    self.num_layers()
                ),
            });
        }
        if snapshot.layers.len() != self.num_layers() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "quantized snapshot covers {} layers, network has {}",
                    snapshot.layers.len(),
                    self.num_layers()
                ),
            });
        }
        let width = if start < self.num_layers() {
            self.layers()[start].in_features()
        } else {
            input.len() / batch.max(1)
        };
        if input.len() != batch * width {
            return Err(NnError::BadInput {
                layer: "quantized-forward",
                expected: width,
                actual: input.len() / batch.max(1),
            });
        }
        scratch.ping.clear();
        scratch.ping.extend_from_slice(input);
        self.run_quantized_layers(start, snapshot, batch, width, scratch)
    }

    /// [`Network::forward_from_quantized`] for an activation that is
    /// *already* on the integer grid: `codes`/`step` come from a prior
    /// [`memaging_tensor::quant::quantize_acts_into`] of the `start`
    /// layer's input. The incremental candidate sweep quantizes each cached
    /// prefix batch once and replays it against every candidate, so the
    /// (vectorized but not free) activation quantization of the widest
    /// layer leaves the per-candidate hot path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward_from_quantized`], plus
    /// [`NnError::InvalidConfig`] if layer `start` is not covered by the
    /// snapshot (an f32 fallback layer cannot consume integer codes).
    pub fn forward_from_prequantized<'s>(
        &mut self,
        start: usize,
        snapshot: &QuantizedNet,
        codes: &[i16],
        step: f64,
        batch: usize,
        scratch: &'s mut QuantScratch,
    ) -> Result<&'s [f32], NnError> {
        if snapshot.layers.len() != self.num_layers() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "quantized snapshot covers {} layers, network has {}",
                    snapshot.layers.len(),
                    self.num_layers()
                ),
            });
        }
        let Some(Some(qd)) = snapshot.layers.get(start) else {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "prequantized input needs a snapshot-covered start layer ({start})"
                ),
            });
        };
        let k = qd.weights.rows();
        if codes.len() != batch * k {
            return Err(NnError::BadInput {
                layer: "quantized-forward",
                expected: k,
                actual: codes.len() / batch.max(1),
            });
        }
        let n = qd.weights.cols();
        if scratch.pong.len() != batch * n {
            scratch.pong.clear();
            scratch.pong.resize(batch * n, 0.0);
        }
        qmm_into(codes, step, batch, &qd.weights, Some(&qd.bias), &mut scratch.pong);
        std::mem::swap(&mut scratch.ping, &mut scratch.pong);
        self.run_quantized_layers(start + 1, snapshot, batch, n, scratch)
    }

    /// Continues a quantized forward from a ready-made *integer
    /// pre-activation* of dense layer `start`: `pre_t` is the transposed
    /// `cols × batch` product from [`memaging_tensor::quant::qmm_pre_t_into`]
    /// (or a base product updated by
    /// [`memaging_tensor::quant::qdelta_apply_t`]), and `scale` is
    /// `act_step · weights.scale()`. The epilogue applies dequantization and
    /// the layer's bias with the exact float expressions of
    /// [`memaging_tensor::quant::qmm_into`], so the result is bit-identical
    /// to [`Network::forward_from_prequantized`] on the same codes — this is
    /// the entry point of the range-selection engine's sparse-delta candidate
    /// replay.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the snapshot disagrees with the
    /// network or layer `start` is not snapshot-covered, and
    /// [`NnError::BadInput`] if `pre_t` is not `batch × cols` long.
    pub fn forward_from_pre<'s>(
        &mut self,
        start: usize,
        snapshot: &QuantizedNet,
        pre_t: &[i32],
        scale: f64,
        batch: usize,
        scratch: &'s mut QuantScratch,
    ) -> Result<&'s [f32], NnError> {
        if snapshot.layers.len() != self.num_layers() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "quantized snapshot covers {} layers, network has {}",
                    snapshot.layers.len(),
                    self.num_layers()
                ),
            });
        }
        let Some(Some(qd)) = snapshot.layers.get(start) else {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "pre-activation input needs a snapshot-covered start layer ({start})"
                ),
            });
        };
        let n = qd.weights.cols();
        if pre_t.len() != batch * n {
            return Err(NnError::BadInput {
                layer: "quantized-forward",
                expected: n,
                actual: pre_t.len() / batch.max(1),
            });
        }
        if scratch.ping.len() != batch * n {
            scratch.ping.clear();
            scratch.ping.resize(batch * n, 0.0);
        }
        for (j, col) in pre_t.chunks_exact(batch.max(1)).enumerate() {
            let b = qd.bias[j] as f64;
            for (i, &t) in col.iter().enumerate() {
                // Same expression as qmm_into's fused epilogue (i32 → i64 →
                // f64 is exact), so bits match the full quantized product.
                scratch.ping[i * n + j] = (t as i64 as f64 * scale + b) as f32;
            }
        }
        self.run_quantized_layers(start + 1, snapshot, batch, n, scratch)
    }

    /// Shared layer loop of the quantized forwards: `scratch.ping` holds
    /// the activation entering layer `start`; `pong` receives each dense
    /// product, then the buffers swap.
    fn run_quantized_layers<'s>(
        &mut self,
        start: usize,
        snapshot: &QuantizedNet,
        batch: usize,
        width: usize,
        scratch: &'s mut QuantScratch,
    ) -> Result<&'s [f32], NnError> {
        self.run_quantized_layers_impl(start, snapshot, batch, width, false, scratch)
    }

    /// [`Network::run_quantized_layers`] with the activation-step policy
    /// explicit: `per_row_steps` quantizes each batch row against its own
    /// range (the batch-composition-safe serving mode), otherwise the whole
    /// batch shares one step (the sweep engine's comparable-grid mode).
    fn run_quantized_layers_impl<'s>(
        &mut self,
        start: usize,
        snapshot: &QuantizedNet,
        batch: usize,
        mut width: usize,
        per_row_steps: bool,
        scratch: &'s mut QuantScratch,
    ) -> Result<&'s [f32], NnError> {
        for idx in start..self.num_layers() {
            if let Some(qd) = &snapshot.layers[idx] {
                let n = qd.weights.cols();
                // Size without zero-filling when possible: the integer
                // kernels overwrite every element.
                if scratch.pong.len() != batch * n {
                    scratch.pong.clear();
                    scratch.pong.resize(batch * n, 0.0);
                }
                if per_row_steps {
                    quantize_rows_into(
                        &scratch.ping,
                        batch,
                        &mut scratch.codes,
                        &mut scratch.row_steps,
                    );
                    qmm_rows_into(
                        &scratch.codes,
                        &scratch.row_steps,
                        batch,
                        &qd.weights,
                        Some(&qd.bias),
                        &mut scratch.pong,
                    );
                } else {
                    let step = quantize_acts_into(&scratch.ping, &mut scratch.codes);
                    qmm_into(
                        &scratch.codes,
                        step,
                        batch,
                        &qd.weights,
                        Some(&qd.bias),
                        &mut scratch.pong,
                    );
                }
                std::mem::swap(&mut scratch.ping, &mut scratch.pong);
                width = n;
                continue;
            }
            let layer = &mut self.layers_mut()[idx];
            if layer.eval_in_place(&mut scratch.ping) {
                continue;
            }
            let x = Tensor::from_vec(std::mem::take(&mut scratch.ping), [batch, width])
                .expect("buffer sized batch × width");
            let y = layer.forward(&x, Mode::Eval)?;
            width = y.len() / batch.max(1);
            scratch.ping = y.into_vec();
        }
        Ok(&scratch.ping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use memaging_tensor::quant::dot_error_bound;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Network {
        models::mlp(&[12, 9, 5], &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn snapshot_covers_dense_layers_only() {
        let net = mlp(3);
        let q = net.quantize_weights();
        assert_eq!(q.num_layers(), 3);
        assert_eq!(q.quantized_layers(), 2, "two dense layers, relu uncovered");
    }

    #[test]
    fn quantized_forward_tracks_f32_within_bound() {
        let mut net = mlp(7);
        let batch = 4;
        let input: Vec<f32> =
            (0..batch * 12).map(|i| ((i * 13 % 31) as f32 - 15.0) * 0.09).collect();
        let x = Tensor::from_vec(input.clone(), [batch, 12]).unwrap();
        let oracle = net.forward(&x, Mode::Eval).unwrap();
        let snapshot = net.quantize_weights();
        let mut scratch = QuantScratch::new();
        let got = net.forward_quantized(&snapshot, &input, batch, &mut scratch).unwrap();
        assert_eq!(got.len(), oracle.len());
        // Loose sanity bound: one layer's provable error, amplified through
        // the second layer by its weight magnitude, stays far below 0.1 for
        // these Xavier-scale weights.
        let bound = dot_error_bound(12, 1.0 / 511.0, 1.0 / 2047.0, 1.0, 2.0).max(0.1);
        for (g, o) in got.iter().zip(oracle.as_slice()) {
            assert!((g - o).abs() as f64 <= bound, "quantized {g} vs f32 {o}");
        }
    }

    #[test]
    fn prefix_suffix_split_matches_full_quantized_forward() {
        let mut net = mlp(9);
        let batch = 3;
        let input: Vec<f32> = (0..batch * 12).map(|i| (i as f32 * 0.21).sin()).collect();
        let snapshot = net.quantize_weights();
        let mut scratch = QuantScratch::new();
        let full: Vec<f32> =
            net.forward_quantized(&snapshot, &input, batch, &mut scratch).unwrap().to_vec();
        for split in 0..=net.num_layers() {
            let x = Tensor::from_vec(input.clone(), [batch, 12]).unwrap();
            let prefix = net.forward_prefix(split, &x, Mode::Eval).unwrap();
            // Splitting mixes f32 prefix activations into the quantized
            // suffix, so bits may differ from the all-quantized pass — but
            // split 0 must be exact.
            let out = net
                .forward_from_quantized(split, &snapshot, prefix.as_slice(), batch, &mut scratch)
                .unwrap();
            assert_eq!(out.len(), full.len());
            if split == 0 {
                assert_eq!(out, &full[..], "split 0 must equal the full quantized pass");
            }
        }
    }

    #[test]
    fn forward_from_pre_matches_prequantized_forward() {
        use memaging_tensor::quant::{qmm_pre_t_into, quantize_acts_into};
        let mut net = mlp(17);
        let batch = 5;
        let acts: Vec<f32> = (0..batch * 12).map(|i| ((i * 5 % 27) as f32 - 13.0) * 0.11).collect();
        let snapshot = net.quantize_weights();
        let mut codes = Vec::new();
        let step = quantize_acts_into(&acts, &mut codes);
        let mut scratch = QuantScratch::new();
        let expect: Vec<u32> = net
            .forward_from_prequantized(0, &snapshot, &codes, step, batch, &mut scratch)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let qd = snapshot.layers[0].as_ref().unwrap();
        let mut pre_t = vec![0i32; qd.weights.cols() * batch];
        qmm_pre_t_into(&codes, batch, &qd.weights, &mut pre_t);
        let scale = step * qd.weights.scale();
        let got: Vec<u32> = net
            .forward_from_pre(0, &snapshot, &pre_t, scale, batch, &mut scratch)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(got, expect, "pre-activation entry must match the fused kernel bit for bit");
        assert!(net.forward_from_pre(1, &snapshot, &pre_t, scale, batch, &mut scratch).is_err());
    }

    #[test]
    fn rows_forward_matches_solo_requests_bit_for_bit() {
        // The serving tier's batching contract: any grouping of requests
        // into batches returns the same bytes as serving each alone.
        let mut net = mlp(23);
        let snapshot = net.quantize_weights();
        let mut scratch = QuantScratch::new();
        for batch in [1usize, 2, 5, 8] {
            let input: Vec<f32> =
                (0..batch * 12).map(|i| ((i * 17 % 43) as f32 - 21.0) * 0.08).collect();
            let batched: Vec<u32> = net
                .forward_quantized_rows(&snapshot, &input, batch, &mut scratch)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let n = batched.len() / batch;
            for i in 0..batch {
                let solo: Vec<u32> = net
                    .forward_quantized(&snapshot, &input[i * 12..(i + 1) * 12], 1, &mut scratch)
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(
                    &batched[i * n..(i + 1) * n],
                    &solo[..],
                    "batch {batch} row {i} diverged from its solo forward"
                );
            }
        }
        assert!(net.forward_quantized_rows(&snapshot, &[], 0, &mut scratch).is_err());
        assert!(net.forward_quantized_rows(&snapshot, &[0.0; 5], 1, &mut scratch).is_err());
    }

    #[test]
    fn rows_forward_is_deterministic_across_thread_counts() {
        let mut net = models::mlp(&[40, 24, 6], &mut StdRng::seed_from_u64(29)).unwrap();
        let batch = 16;
        let input: Vec<f32> = (0..batch * 40).map(|i| ((i % 31) as f32 - 15.0) * 0.09).collect();
        let snapshot = net.quantize_weights();
        let mut scratch = QuantScratch::new();
        memaging_par::set_threads(1);
        let reference: Vec<u32> = net
            .forward_quantized_rows(&snapshot, &input, batch, &mut scratch)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for threads in [2, 8] {
            memaging_par::set_threads(threads);
            let got: Vec<u32> = net
                .forward_quantized_rows(&snapshot, &input, batch, &mut scratch)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, reference, "thread count {threads} changed bits");
        }
        memaging_par::set_threads(1);
    }

    #[test]
    fn requantize_layer_follows_weight_update() {
        let mut net = mlp(11);
        let mut snapshot = net.quantize_weights();
        let mut w = net.weight_matrices()[1].as_slice().to_vec();
        for v in &mut w {
            *v = -*v;
        }
        net.set_weight_matrix(1, &w).unwrap();
        net.requantize_layer(&mut snapshot, 1).unwrap();
        assert_eq!(snapshot, net.quantize_weights(), "resynced snapshot must match a fresh one");
        assert!(net.requantize_layer(&mut snapshot, 5).is_err());
    }

    #[test]
    fn rejects_bad_input_and_stale_snapshot() {
        let mut net = mlp(13);
        let snapshot = net.quantize_weights();
        let mut scratch = QuantScratch::new();
        assert!(net.forward_quantized(&snapshot, &[0.0; 5], 1, &mut scratch).is_err());
        assert!(net.forward_from_quantized(9, &snapshot, &[0.0; 12], 1, &mut scratch).is_err());
        let mut other = models::mlp(&[12, 9, 8, 5], &mut StdRng::seed_from_u64(1)).unwrap();
        assert!(other.forward_quantized(&snapshot, &[0.0; 12], 1, &mut scratch).is_err());
    }

    #[test]
    fn quantized_forward_is_deterministic_across_thread_counts() {
        let mut net = models::mlp(&[40, 24, 6], &mut StdRng::seed_from_u64(21)).unwrap();
        let batch = 16;
        let input: Vec<f32> = (0..batch * 40).map(|i| ((i % 37) as f32 - 18.0) * 0.07).collect();
        let snapshot = net.quantize_weights();
        let mut scratch = QuantScratch::new();
        memaging_par::set_threads(1);
        let reference: Vec<u32> = net
            .forward_quantized(&snapshot, &input, batch, &mut scratch)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for threads in [2, 8] {
            memaging_par::set_threads(threads);
            let got: Vec<u32> = net
                .forward_quantized(&snapshot, &input, batch, &mut scratch)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, reference, "thread count {threads} changed bits");
        }
        memaging_par::set_threads(1);
    }
}
