//! Error type for the neural-network stack.

use std::error::Error;
use std::fmt;

use memaging_tensor::TensorError;

/// Error produced by network construction, training or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape/rank/index problems).
    Tensor(TensorError),
    /// A layer received input with an unexpected feature count.
    BadInput {
        /// Name of the layer that rejected the input.
        layer: &'static str,
        /// Expected flattened feature count.
        expected: usize,
        /// Received flattened feature count.
        actual: usize,
    },
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward {
        /// Name of the offending layer.
        layer: &'static str,
    },
    /// A label was out of range for the network's output dimension.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of output classes.
        classes: usize,
    },
    /// Invalid hyper-parameter or architecture description.
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Training diverged (non-finite loss or weights).
    Diverged {
        /// The epoch at which divergence was detected.
        epoch: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { layer, expected, actual } => {
                write!(f, "layer `{layer}` expected {expected} input features, got {actual}")
            }
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "layer `{layer}`: backward called before forward")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::InvalidConfig { reason } => write!(f, "invalid network config: {reason}"),
            NnError::Diverged { epoch } => write!(f, "training diverged at epoch {epoch}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        let te = TensorError::RankMismatch { expected: 2, actual: 3, op: "x" };
        let e: NnError = te.clone().into();
        assert_eq!(e, NnError::Tensor(te));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn display_messages() {
        let e = NnError::BadInput { layer: "dense", expected: 10, actual: 12 };
        assert!(e.to_string().contains("dense"));
        let e = NnError::Diverged { epoch: 3 };
        assert!(e.to_string().contains("epoch 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
