//! Learning-rate schedules for [`Sgd`](crate::Sgd).

/// A learning-rate schedule: maps the (0-based) epoch to a multiplier of
/// the base learning rate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum LrSchedule {
    /// Constant rate (multiplier 1 everywhere).
    #[default]
    Constant,
    /// Multiply by `gamma` every `every` epochs: `gamma^(epoch / every)`.
    Step {
        /// Epochs between decays.
        every: usize,
        /// Decay multiplier per step (0 < gamma <= 1).
        gamma: f32,
    },
    /// Cosine annealing from 1 down to `floor` over `total_epochs`.
    Cosine {
        /// The horizon over which the rate anneals.
        total_epochs: usize,
        /// The final multiplier (0 <= floor <= 1).
        floor: f32,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier at `epoch`.
    ///
    /// Out-of-domain parameters are clamped rather than panicking (a
    /// schedule is config data, often arriving from sweeps).
    pub fn multiplier(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Step { every, gamma } => {
                let every = every.max(1);
                let gamma = gamma.clamp(0.0, 1.0);
                gamma.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { total_epochs, floor } => {
                let total = total_epochs.max(1);
                let floor = floor.clamp(0.0, 1.0);
                let t = (epoch.min(total) as f32) / total as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                floor + (1.0 - floor) * cos
            }
        }
    }

    /// The absolute rate at `epoch` for a `base` learning rate.
    pub fn rate(&self, base: f32, epoch: usize) -> f32 {
        base * self.multiplier(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        let s = LrSchedule::Constant;
        for e in [0, 1, 100] {
            assert_eq!(s.multiplier(e), 1.0);
        }
        assert_eq!(s.rate(0.1, 50), 0.1);
    }

    #[test]
    fn step_decays_in_plateaus() {
        let s = LrSchedule::Step { every: 10, gamma: 0.5 };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(9), 1.0);
        assert_eq!(s.multiplier(10), 0.5);
        assert_eq!(s.multiplier(19), 0.5);
        assert_eq!(s.multiplier(20), 0.25);
    }

    #[test]
    fn cosine_anneals_monotonically_to_floor() {
        let s = LrSchedule::Cosine { total_epochs: 20, floor: 0.1 };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
        let mut prev = s.multiplier(0);
        for e in 1..=20 {
            let m = s.multiplier(e);
            assert!(m <= prev + 1e-6, "cosine must be non-increasing");
            prev = m;
        }
        assert!((s.multiplier(20) - 0.1).abs() < 1e-6);
        // Past the horizon it stays at the floor.
        assert!((s.multiplier(100) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let s = LrSchedule::Step { every: 0, gamma: 2.0 };
        assert_eq!(s.multiplier(5), 1.0, "gamma clamps to 1, every to 1");
        let s = LrSchedule::Cosine { total_epochs: 0, floor: -1.0 };
        assert!(s.multiplier(0).is_finite());
    }
}
