//! Weight checkpointing: save and restore a network's parameters with a
//! small self-describing text format (no external serialization crates).
//!
//! Format (`MEMAGING-CKPT v1`):
//!
//! ```text
//! memaging-checkpoint v1
//! tensors <count>
//! tensor <dims space-separated>
//! <len> space-separated f32 values in row-major order (hex bits)
//! ...
//! ```
//!
//! Values are stored as hexadecimal IEEE-754 bit patterns, so round trips
//! are exact (no decimal parsing loss).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use memaging_tensor::Tensor;

use crate::error::NnError;
use crate::network::Network;

const MAGIC: &str = "memaging-checkpoint v1";

fn parse_error(reason: impl Into<String>) -> NnError {
    NnError::InvalidConfig { reason: reason.into() }
}

/// Writes tensors to a writer in checkpoint format.
///
/// Generic writers are taken by value; pass `&mut writer` to keep using it
/// afterwards.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] wrapping I/O failures.
pub fn write_tensors<W: Write>(mut w: W, tensors: &[Tensor]) -> Result<(), NnError> {
    let io = |e: std::io::Error| parse_error(format!("checkpoint write failed: {e}"));
    writeln!(w, "{MAGIC}").map_err(io)?;
    writeln!(w, "tensors {}", tensors.len()).map_err(io)?;
    for t in tensors {
        write!(w, "tensor").map_err(io)?;
        for d in t.dims() {
            write!(w, " {d}").map_err(io)?;
        }
        writeln!(w).map_err(io)?;
        let mut first = true;
        for &v in t.as_slice() {
            if !first {
                write!(w, " ").map_err(io)?;
            }
            write!(w, "{:08x}", v.to_bits()).map_err(io)?;
            first = false;
        }
        writeln!(w).map_err(io)?;
    }
    Ok(())
}

/// Reads tensors from a reader in checkpoint format.
///
/// Generic readers are taken by value; pass `&mut reader` to keep using it
/// afterwards.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] on malformed input or I/O failure.
pub fn read_tensors<R: Read>(r: R) -> Result<Vec<Tensor>, NnError> {
    let mut lines = BufReader::new(r).lines();
    let mut next = || -> Result<String, NnError> {
        lines
            .next()
            .ok_or_else(|| parse_error("unexpected end of checkpoint"))?
            .map_err(|e| parse_error(format!("checkpoint read failed: {e}")))
    };
    if next()?.trim() != MAGIC {
        return Err(parse_error("not a memaging checkpoint (bad magic)"));
    }
    let header = next()?;
    let count: usize = header
        .strip_prefix("tensors ")
        .and_then(|c| c.trim().parse().ok())
        .ok_or_else(|| parse_error(format!("bad tensor count line `{header}`")))?;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let dims_line = next()?;
        let dims: Vec<usize> = dims_line
            .strip_prefix("tensor")
            .ok_or_else(|| parse_error(format!("bad tensor header `{dims_line}`")))?
            .split_whitespace()
            .map(|d| d.parse().map_err(|_| parse_error(format!("bad dim `{d}`"))))
            .collect::<Result<_, _>>()?;
        let data_line = next()?;
        let data: Vec<f32> = data_line
            .split_whitespace()
            .map(|h| {
                u32::from_str_radix(h, 16)
                    .map(f32::from_bits)
                    .map_err(|_| parse_error(format!("bad value `{h}`")))
            })
            .collect::<Result<_, _>>()?;
        tensors.push(Tensor::from_vec(data, dims).map_err(NnError::from)?);
    }
    Ok(tensors)
}

impl Network {
    /// Saves every parameter (weights *and* biases, in visit order) to
    /// `path` in the checkpoint format.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] wrapping I/O failures.
    pub fn save_checkpoint(&mut self, path: impl AsRef<Path>) -> Result<(), NnError> {
        let mut params = Vec::new();
        self.visit_params(&mut |_, _, p, _| params.push(p.clone()));
        let file = std::fs::File::create(path.as_ref())
            .map_err(|e| parse_error(format!("cannot create checkpoint: {e}")))?;
        write_tensors(BufWriter::new(file), &params)
    }

    /// Restores every parameter from a checkpoint written by
    /// [`Network::save_checkpoint`] for an identically-shaped network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the checkpoint is malformed or
    /// the parameter count/shapes disagree with this architecture.
    pub fn load_checkpoint(&mut self, path: impl AsRef<Path>) -> Result<(), NnError> {
        let file = std::fs::File::open(path.as_ref())
            .map_err(|e| parse_error(format!("cannot open checkpoint: {e}")))?;
        let tensors = read_tensors(file)?;
        let mut expected = 0usize;
        self.visit_params(&mut |_, _, _, _| expected += 1);
        if tensors.len() != expected {
            return Err(parse_error(format!(
                "checkpoint has {} tensors but the network has {expected} parameters",
                tensors.len()
            )));
        }
        let mut idx = 0usize;
        let mut mismatch: Option<String> = None;
        self.visit_params(&mut |_, _, p, _| {
            let t = &tensors[idx];
            idx += 1;
            if t.shape() != p.shape() {
                mismatch.get_or_insert(format!(
                    "parameter {} shape mismatch: checkpoint {} vs network {}",
                    idx - 1,
                    t.shape(),
                    p.shape()
                ));
                return;
            }
            *p = t.clone();
        });
        match mismatch {
            Some(reason) => Err(parse_error(reason)),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use memaging_nn_test_util::*;

    // Local shim so the path below stays tidy.
    mod memaging_nn_test_util {
        pub use rand::rngs::StdRng;
        pub use rand::SeedableRng;
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memaging-ckpt-{}-{name}", std::process::id()))
    }

    #[test]
    fn tensors_round_trip_exactly() {
        let tensors = vec![
            Tensor::from_fn([2, 3], |i| (i as f32 * 0.333).sin()),
            Tensor::from_vec(vec![f32::MIN_POSITIVE, -0.0, 1.5e-30], [3]).unwrap(),
        ];
        let mut buf = Vec::new();
        write_tensors(&mut buf, &tensors).unwrap();
        let back = read_tensors(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in tensors.iter().zip(&back) {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact round trip");
            }
        }
    }

    #[test]
    fn network_checkpoint_round_trips() {
        let path = tmp_path("net");
        let mut net = models::mlp(&[6, 5, 3], &mut StdRng::seed_from_u64(1)).unwrap();
        let original = net.weight_matrices();
        net.save_checkpoint(&path).unwrap();
        // Scramble, then restore.
        let mut other = models::mlp(&[6, 5, 3], &mut StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(other.weight_matrices(), original);
        other.load_checkpoint(&path).unwrap();
        assert_eq!(other.weight_matrices(), original);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let path = tmp_path("mismatch");
        let mut net = models::mlp(&[6, 5, 3], &mut StdRng::seed_from_u64(3)).unwrap();
        net.save_checkpoint(&path).unwrap();
        let mut other = models::mlp(&[6, 4, 3], &mut StdRng::seed_from_u64(3)).unwrap();
        assert!(other.load_checkpoint(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(read_tensors(&b"not a checkpoint"[..]).is_err());
        assert!(read_tensors(&b"memaging-checkpoint v1\ntensors zzz\n"[..]).is_err());
        assert!(read_tensors(&b"memaging-checkpoint v1\ntensors 1\nbogus 2 2\n00\n"[..]).is_err());
        assert!(
            read_tensors(&b"memaging-checkpoint v1\ntensors 1\ntensor 2\nzzzz zzzz\n"[..]).is_err()
        );
        // Truncated.
        assert!(read_tensors(&b"memaging-checkpoint v1\ntensors 1\n"[..]).is_err());
    }

    #[test]
    fn load_rejects_wrong_parameter_count() {
        let path = tmp_path("count");
        let mut small = models::mlp(&[4, 2], &mut StdRng::seed_from_u64(4)).unwrap();
        small.save_checkpoint(&path).unwrap();
        let mut big = models::mlp(&[4, 3, 2], &mut StdRng::seed_from_u64(4)).unwrap();
        assert!(big.load_checkpoint(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
