//! Softmax cross-entropy loss (eq. 1 of the paper, data term).

use memaging_tensor::{ops, Tensor};

use crate::error::NnError;

/// Result of a loss evaluation: the mean loss and the gradient with respect
/// to the logits (already divided by the batch size).
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// `[batch, classes]` gradient w.r.t. the logits.
    pub grad_logits: Tensor,
}

/// Computes mean softmax cross-entropy and its logit gradient.
///
/// This is the `C(W)` (cross-entropy) term of the paper's cost function
/// (eq. 1); the regularization terms `R(W)` / `R1(W) + R2(W)` are applied by
/// the optimizer through a [`Regularizer`](crate::Regularizer).
///
/// # Errors
///
/// Returns [`NnError::LabelOutOfRange`] for a label `>= classes`, or
/// [`NnError::BadInput`] if `labels.len()` differs from the batch size.
///
/// # Examples
///
/// ```
/// use memaging_nn::loss::softmax_cross_entropy;
/// use memaging_tensor::Tensor;
///
/// # fn main() -> Result<(), memaging_nn::NnError> {
/// let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], [2, 2])?;
/// let out = softmax_cross_entropy(&logits, &[0, 1])?;
/// assert!(out.loss < 0.05); // confident and correct
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput, NnError> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(memaging_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
            op: "softmax_cross_entropy",
        }));
    }
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != batch {
        return Err(NnError::BadInput {
            layer: "softmax_cross_entropy",
            expected: batch,
            actual: labels.len(),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(NnError::LabelOutOfRange { label: bad, classes });
    }
    let probs = ops::softmax_rows(logits)?;
    let p = probs.as_slice();
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let g = grad.as_mut_slice();
    let inv_batch = 1.0 / batch as f32;
    for (i, &label) in labels.iter().enumerate() {
        let pi = p[i * classes + label].max(1e-12);
        loss -= (pi as f64).ln();
        // dL/dlogits = (softmax - onehot) / batch
        g[i * classes + label] -= 1.0;
    }
    for v in g.iter_mut() {
        *v *= inv_batch;
    }
    Ok(LossOutput { loss: (loss / batch as f64) as f32, grad_logits: grad })
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if `labels.len()` differs from the batch
/// size, or a wrapped tensor error for a non-matrix input.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f64, NnError> {
    let preds = ops::argmax_rows(logits)?;
    if preds.len() != labels.len() {
        return Err(NnError::BadInput {
            layer: "accuracy",
            expected: preds.len(),
            actual: labels.len(),
        });
    }
    if preds.is_empty() {
        return Ok(0.0);
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f64 / labels.len() as f64)
}

/// [`accuracy`] over a flat row-major `[labels.len() × width]` logits slice,
/// with the same first-index-wins argmax tie-break. The quantized forward
/// path returns borrowed slices rather than tensors; this avoids
/// materializing one just to score it.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if `logits.len() != labels.len() * width`
/// or `width` is zero with nonempty labels.
pub fn accuracy_slice(logits: &[f32], width: usize, labels: &[usize]) -> Result<f64, NnError> {
    if labels.is_empty() {
        return Ok(0.0);
    }
    if width == 0 || logits.len() != labels.len() * width {
        return Err(NnError::BadInput {
            layer: "accuracy",
            expected: labels.len() * width,
            actual: logits.len(),
        });
    }
    let mut correct = 0usize;
    for (row, &label) in logits.chunks_exact(width).zip(labels) {
        let mut best = 0;
        for (j, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct as f64 / labels.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros([1, 4]);
        let out = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot() {
        let logits = Tensor::zeros([1, 2]);
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        // softmax = [0.5, 0.5]; grad = [0.5-1, 0.5] / 1
        assert!((out.grad_logits.as_slice()[0] + 0.5).abs() < 1e-6);
        assert!((out.grad_logits.as_slice()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_fn([3, 5], |i| (i as f32 * 0.7).sin());
        let out = softmax_cross_entropy(&logits, &[0, 2, 4]).unwrap();
        for i in 0..3 {
            let row_sum: f32 = out.grad_logits.as_slice()[i * 5..(i + 1) * 5].iter().sum();
            assert!(row_sum.abs() < 1e-5);
        }
    }

    #[test]
    fn numeric_gradient_check() {
        let logits = Tensor::from_fn([2, 3], |i| (i as f32 * 0.9).cos());
        let labels = [1usize, 2];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = softmax_cross_entropy(&lp, &labels).unwrap().loss;
            let fm = softmax_cross_entropy(&lm, &labels).unwrap().loss;
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = out.grad_logits.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "loss grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros([1, 3]);
        assert!(matches!(
            softmax_cross_entropy(&logits, &[3]),
            Err(NnError::LabelOutOfRange { .. })
        ));
        assert!(matches!(softmax_cross_entropy(&logits, &[0, 1]), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], [3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn loss_is_finite_for_extreme_logits() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], [1, 2]).unwrap();
        let out = softmax_cross_entropy(&logits, &[1]).unwrap();
        assert!(out.loss.is_finite());
        assert!(out.grad_logits.all_finite());
    }
}
