//! 2-D convolution layer (im2col-lowered).

use std::sync::Mutex;

use memaging_par::{par_chunks_mut, parallelism_for};
use memaging_tensor::conv::{col2im, im2col_slice, ConvGeometry};
use memaging_tensor::{init, ops, Tensor};
use rand::Rng;

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode, ParamKind};

/// A 2-D convolution layer operating on flattened `[batch, C·H·W]` rows.
///
/// The kernels are stored as a single `[out_channels, in_channels·kh·kw]`
/// matrix — exactly the matrix a memristor crossbar holds when accelerating
/// the convolution, and the matrix exposed through
/// [`Layer::weight_matrix`].
///
/// # Examples
///
/// ```
/// use memaging_nn::{Conv2d, Layer, Mode};
/// use memaging_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memaging_nn::NnError> {
/// // 1 input channel, 4 output channels, 3x3 kernel on 8x8 images.
/// let mut conv = Conv2d::new(1, 4, (8, 8), 3, 1, 1, &mut StdRng::seed_from_u64(0));
/// let x = Tensor::ones([2, 64]);
/// let y = conv.forward(&x, Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 4 * 8 * 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    kernels: Tensor,
    bias: Tensor,
    grad_kernels: Tensor,
    grad_bias: Tensor,
    geometry: ConvGeometry,
    out_channels: usize,
    cached_cols: Option<Vec<Tensor>>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal kernels and zero bias.
    ///
    /// `input_hw` is the `(height, width)` of the incoming feature map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel exceeds the padded
    /// input (these are programming errors in an architecture description).
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        input_hw: (usize, usize),
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let geometry = ConvGeometry {
            in_channels,
            in_h: input_hw.0,
            in_w: input_hw.1,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        };
        geometry.validate().expect("invalid convolution geometry");
        assert!(out_channels > 0, "out_channels must be nonzero");
        let patch = geometry.patch_len();
        Conv2d {
            kernels: init::he_normal([out_channels, patch], patch, rng),
            bias: Tensor::zeros([out_channels]),
            grad_kernels: Tensor::zeros([out_channels, patch]),
            grad_bias: Tensor::zeros([out_channels]),
            geometry,
            out_channels,
            cached_cols: None,
        }
    }

    /// The window-sweep geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geometry
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Output feature-map `(height, width)`.
    pub fn output_hw(&self) -> (usize, usize) {
        (self.geometry.out_h(), self.geometry.out_w())
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Convolution
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let in_feat = self.in_features();
        if input.rank() != 2 || input.dims()[1] != in_feat {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: in_feat,
                actual: if input.rank() == 2 { input.dims()[1] } else { input.len() },
            });
        }
        let batch = input.dims()[0];
        let g = self.geometry;
        let npatch = g.num_patches();
        let out_feat = self.out_channels * npatch;
        let mut out = vec![0.0f32; batch * out_feat];
        let iv = input.as_slice();
        let kernels = &self.kernels;
        let bias = self.bias.as_slice();
        let out_channels = self.out_channels;
        // One sample = one im2col + one kernel matmul; samples are
        // independent, so the batch parallelizes over disjoint output rows
        // (each sample's arithmetic is untouched — results stay
        // bit-identical at any thread count).
        let sample_ops = 2 * out_channels * g.patch_len() * npatch;
        // Lowers and convolves sample `s` straight from the batch buffer
        // (no per-sample image copy), returning its column matrix.
        let forward_sample = |s: usize, dst: &mut [f32]| -> Result<Tensor, NnError> {
            let row = &iv[s * in_feat..(s + 1) * in_feat];
            let cols = im2col_slice(row, &g)?;
            // [out_c, patch] x [patch, npatch] = [out_c, npatch]
            let conv = ops::matmul(kernels, &cols)?;
            for oc in 0..out_channels {
                let b = bias[oc];
                for p in 0..npatch {
                    dst[oc * npatch + p] = conv.as_slice()[oc * npatch + p] + b;
                }
            }
            Ok(cols)
        };
        let threads = parallelism_for(batch * sample_ops);
        // Any per-sample error (structurally impossible once the width
        // check above passed, but surfaced faithfully) — first in batch
        // order wins.
        let first_err: Mutex<Option<(usize, NnError)>> = Mutex::new(None);
        let record_err = |s: usize, e: NnError| {
            if let Ok(mut slot) = first_err.lock() {
                if slot.as_ref().is_none_or(|(prev, _)| s < *prev) {
                    *slot = Some((s, e));
                }
            }
        };
        if mode == Mode::Train {
            // Keep every sample's columns for backward, collected in batch
            // order; each worker owns one slot and one output row, both
            // disjoint.
            let mut slots: Vec<(Option<Tensor>, Vec<f32>)> =
                std::iter::repeat_with(|| (None, vec![0.0f32; out_feat])).take(batch).collect();
            par_chunks_mut(&mut slots, 1, threads, |s, slot| {
                let (cols_slot, dst) = &mut slot[0];
                match forward_sample(s, dst) {
                    Ok(cols) => *cols_slot = Some(cols),
                    Err(e) => record_err(s, e),
                }
            });
            if let Some((_, e)) = first_err.lock().map(|mut g| g.take()).unwrap_or(None) {
                return Err(e);
            }
            let mut cols_cache = Vec::with_capacity(batch);
            for (s, (cols, row)) in slots.into_iter().enumerate() {
                out[s * out_feat..(s + 1) * out_feat].copy_from_slice(&row);
                cols_cache.push(cols.expect("sample columns computed"));
            }
            self.cached_cols = Some(cols_cache);
        } else {
            // Inference writes each sample's row straight into the batch
            // output buffer; the columns are dropped.
            par_chunks_mut(&mut out, out_feat, threads, |s, dst| {
                if let Err(e) = forward_sample(s, dst) {
                    record_err(s, e);
                }
            });
            if let Some((_, e)) = first_err.lock().map(|mut g| g.take()).unwrap_or(None) {
                return Err(e);
            }
        }
        Tensor::from_vec(out, [batch, out_feat]).map_err(NnError::from)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cols_cache =
            self.cached_cols.as_ref().ok_or(NnError::BackwardBeforeForward { layer: "conv2d" })?;
        let g = self.geometry;
        let npatch = g.num_patches();
        let out_feat = self.out_channels * npatch;
        let in_feat = g.in_channels * g.in_h * g.in_w;
        let batch = grad_out.dims()[0];
        if grad_out.rank() != 2 || grad_out.dims()[1] != out_feat || batch != cols_cache.len() {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: out_feat,
                actual: if grad_out.rank() == 2 { grad_out.dims()[1] } else { grad_out.len() },
            });
        }
        let mut grad_in = vec![0.0f32; batch * in_feat];
        for s in 0..batch {
            let gslice = &grad_out.as_slice()[s * out_feat..(s + 1) * out_feat];
            let gmat = Tensor::from_vec(gslice.to_vec(), [self.out_channels, npatch])?;
            // dK += dY · colsᵀ
            let dk = ops::matmul_transpose_b(&gmat, &cols_cache[s])?;
            self.grad_kernels.axpy(1.0, &dk)?;
            // db += row sums of dY
            for oc in 0..self.out_channels {
                let sum: f32 = gslice[oc * npatch..(oc + 1) * npatch].iter().sum();
                self.grad_bias.as_mut_slice()[oc] += sum;
            }
            // dcols = Kᵀ · dY, then scatter back to image space.
            let dcols = ops::matmul_transpose_a(&self.kernels, &gmat)?;
            let dimage = col2im(&dcols, &g)?;
            grad_in[s * in_feat..(s + 1) * in_feat].copy_from_slice(dimage.as_slice());
        }
        Tensor::from_vec(grad_in, [batch, in_feat]).map_err(NnError::from)
    }

    fn in_features(&self) -> usize {
        self.geometry.in_channels * self.geometry.in_h * self.geometry.in_w
    }

    fn out_features(&self) -> usize {
        self.out_channels * self.geometry.num_patches()
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamKind, &mut Tensor, &Tensor)) {
        visitor(ParamKind::Weight, &mut self.kernels, &self.grad_kernels);
        visitor(ParamKind::Bias, &mut self.bias, &self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_kernels.fill_zero();
        self.grad_bias.fill_zero();
    }

    fn weight_matrix(&self) -> Option<&Tensor> {
        Some(&self.kernels)
    }

    fn weight_matrix_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.kernels)
    }

    fn bias_vector(&self) -> Option<&Tensor> {
        Some(&self.bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn forward_shape() {
        let mut conv = Conv2d::new(2, 3, (6, 6), 3, 1, 1, &mut rng());
        let x = Tensor::ones([4, 2 * 6 * 6]);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 3 * 6 * 6]);
    }

    #[test]
    fn stride_downsamples() {
        let conv = Conv2d::new(1, 1, (8, 8), 2, 2, 0, &mut rng());
        assert_eq!(conv.output_hw(), (4, 4));
        assert_eq!(conv.out_features(), 16);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // A single 1x1 kernel with weight 1 and zero bias is identity.
        let mut conv = Conv2d::new(1, 1, (3, 3), 1, 1, 0, &mut rng());
        conv.kernels = Tensor::ones([1, 1]);
        let x = Tensor::from_fn([1, 9], |i| i as f32);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        // Sum kernel over a 3x3 input with no padding: output = sum of all 9.
        let mut conv = Conv2d::new(1, 1, (3, 3), 3, 1, 0, &mut rng());
        conv.kernels = Tensor::ones([1, 9]);
        conv.bias = Tensor::from_vec(vec![0.5], [1]).unwrap();
        let x = Tensor::from_fn([1, 9], |i| (i + 1) as f32);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[45.5]);
    }

    #[test]
    fn numeric_gradient_check_kernels_and_input() {
        let mut conv = Conv2d::new(1, 2, (4, 4), 3, 1, 1, &mut rng());
        let x = Tensor::from_fn([2, 16], |i| (i as f32 * 0.31).sin());
        conv.forward(&x, Mode::Train).unwrap();
        let gy = Tensor::ones([2, 2 * 16]);
        let dx = conv.backward(&gy).unwrap();
        let eps = 1e-2f32;
        // Kernel gradient.
        for idx in [0usize, 5, 11, 17] {
            let mut p = conv.clone();
            p.kernels.as_mut_slice()[idx] += eps;
            let yp = p.forward(&x, Mode::Eval).unwrap().sum();
            let mut m = conv.clone();
            m.kernels.as_mut_slice()[idx] -= eps;
            let ym = m.forward(&x, Mode::Eval).unwrap().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            let analytic = conv.grad_kernels.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
                "kernel grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }
        // Input gradient.
        for idx in [0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let yp = conv.forward(&xp, Mode::Eval).unwrap().sum();
            let ym = conv.forward(&xm, Mode::Eval).unwrap().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
                "input grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let mut conv = Conv2d::new(1, 1, (3, 3), 3, 1, 1, &mut rng());
        let x = Tensor::ones([1, 9]);
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&Tensor::ones([1, 9])).unwrap();
        // db = number of output positions = 9.
        assert_eq!(conv.grad_bias.as_slice(), &[9.0]);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut conv = Conv2d::new(1, 1, (4, 4), 3, 1, 1, &mut rng());
        assert!(conv.forward(&Tensor::ones([1, 15]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(1, 1, (4, 4), 3, 1, 1, &mut rng());
        assert!(conv.backward(&Tensor::ones([1, 16])).is_err());
    }

    #[test]
    fn weight_matrix_is_kernel_matrix() {
        let conv = Conv2d::new(2, 5, (4, 4), 3, 1, 1, &mut rng());
        assert_eq!(conv.weight_matrix().unwrap().dims(), &[5, 18]);
    }
}
