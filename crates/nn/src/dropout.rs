//! Inverted dropout layer.

use memaging_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; inference is a
/// no-op. The layer owns a seeded RNG so training runs stay reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    features: usize,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] unless `0 <= p < 1`.
    pub fn new(p: f32, features: usize, seed: u64) -> Result<Self, NnError> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig {
                reason: format!("dropout probability {p} not in [0, 1)"),
            });
        }
        Ok(Dropout { p, features, rng: StdRng::seed_from_u64(seed), cached_mask: None })
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Regularization
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.dims()[1] != self.features {
            return Err(NnError::BadInput {
                layer: "dropout",
                expected: self.features,
                actual: if input.rank() == 2 { input.dims()[1] } else { input.len() },
            });
        }
        match mode {
            Mode::Eval => Ok(input.clone()),
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask = Tensor::from_fn(input.shape().clone(), |_| {
                    if self.rng.gen::<f32>() < keep {
                        scale
                    } else {
                        0.0
                    }
                });
                let out = input.mul(&mask)?;
                self.cached_mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask =
            self.cached_mask.as_ref().ok_or(NnError::BackwardBeforeForward { layer: "dropout" })?;
        Ok(grad_out.mul(mask)?)
    }

    fn in_features(&self) -> usize {
        self.features
    }

    fn out_features(&self) -> usize {
        self.features
    }

    fn eval_in_place(&self, _data: &mut [f32]) -> bool {
        // Inference-time dropout is the identity.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_probability() {
        assert!(Dropout::new(1.0, 4, 0).is_err());
        assert!(Dropout::new(-0.1, 4, 0).is_err());
        assert!(Dropout::new(0.0, 4, 0).is_ok());
        assert!(Dropout::new(0.5, 4, 0).is_ok());
    }

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.9, 4, 1).unwrap();
        let x = Tensor::from_fn([2, 4], |i| i as f32);
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.5, 1000, 7).unwrap();
        let x = Tensor::ones([1, 1000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.1, "inverted dropout mean {mean}");
        // Survivors are scaled by 2.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 64, 3).unwrap();
        let x = Tensor::ones([1, 64]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let dx = d.backward(&Tensor::ones([1, 64])).unwrap();
        // Zero exactly where the forward output is zero.
        for (a, b) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn p_zero_keeps_everything() {
        let mut d = Dropout::new(0.0, 8, 3).unwrap();
        let x = Tensor::ones([1, 8]);
        let y = d.forward(&x, Mode::Train).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn backward_requires_forward() {
        let mut d = Dropout::new(0.5, 4, 0).unwrap();
        assert!(d.backward(&Tensor::ones([1, 4])).is_err());
    }
}
