//! Spatial pooling layers (max and average).

use memaging_tensor::Tensor;

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over each window.
    Max,
    /// Arithmetic mean over each window.
    Average,
}

/// A non-overlapping 2-D pooling layer on flattened `[batch, C·H·W]` rows.
///
/// Window and stride are equal (`window`); input height/width must be
/// divisible by the window — the common configuration in LeNet-5 and VGG-16.
///
/// # Examples
///
/// ```
/// use memaging_nn::{Layer, Mode, Pool2d, PoolKind};
/// use memaging_tensor::Tensor;
///
/// # fn main() -> Result<(), memaging_nn::NnError> {
/// let mut pool = Pool2d::new(PoolKind::Max, 1, (4, 4), 2)?;
/// let x = Tensor::from_fn([1, 16], |i| i as f32);
/// let y = pool.forward(&x, Mode::Eval)?;
/// assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pool2d {
    kind: PoolKind,
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    /// For max pooling: per-forward flat argmax indices (batch-major).
    cached_argmax: Option<Vec<usize>>,
    cached_batch: usize,
}

impl Pool2d {
    /// Creates a pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the window is zero or does not
    /// evenly divide the input dimensions.
    pub fn new(
        kind: PoolKind,
        channels: usize,
        input_hw: (usize, usize),
        window: usize,
    ) -> Result<Self, NnError> {
        if window == 0 || channels == 0 || input_hw.0 == 0 || input_hw.1 == 0 {
            return Err(NnError::InvalidConfig { reason: "pool dims must be nonzero".into() });
        }
        if !input_hw.0.is_multiple_of(window) || !input_hw.1.is_multiple_of(window) {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "pool window {window} must divide input {}x{}",
                    input_hw.0, input_hw.1
                ),
            });
        }
        Ok(Pool2d {
            kind,
            channels,
            in_h: input_hw.0,
            in_w: input_hw.1,
            window,
            cached_argmax: None,
            cached_batch: 0,
        })
    }

    /// Output feature-map `(height, width)`.
    pub fn output_hw(&self) -> (usize, usize) {
        (self.in_h / self.window, self.in_w / self.window)
    }
}

impl Layer for Pool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        match self.kind {
            PoolKind::Max => "maxpool2d",
            PoolKind::Average => "avgpool2d",
        }
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pooling
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let in_feat = self.in_features();
        if input.rank() != 2 || input.dims()[1] != in_feat {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: in_feat,
                actual: if input.rank() == 2 { input.dims()[1] } else { input.len() },
            });
        }
        let batch = input.dims()[0];
        let (oh, ow) = self.output_hw();
        let out_feat = self.channels * oh * ow;
        let mut out = vec![0.0f32; batch * out_feat];
        let mut argmax = if self.kind == PoolKind::Max && mode == Mode::Train {
            Some(vec![0usize; batch * out_feat])
        } else {
            None
        };
        let w = self.window;
        let area = (w * w) as f32;
        let src = input.as_slice();
        for s in 0..batch {
            let base = s * in_feat;
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let oidx = s * out_feat + (c * oh + oy) * ow + ox;
                        match self.kind {
                            PoolKind::Max => {
                                let mut best = f32::NEG_INFINITY;
                                let mut best_idx = 0;
                                for dy in 0..w {
                                    for dx in 0..w {
                                        let y = oy * w + dy;
                                        let x = ox * w + dx;
                                        let idx = base + (c * self.in_h + y) * self.in_w + x;
                                        if src[idx] > best {
                                            best = src[idx];
                                            best_idx = idx;
                                        }
                                    }
                                }
                                out[oidx] = best;
                                if let Some(am) = argmax.as_mut() {
                                    am[oidx] = best_idx;
                                }
                            }
                            PoolKind::Average => {
                                let mut acc = 0.0f32;
                                for dy in 0..w {
                                    for dx in 0..w {
                                        let y = oy * w + dy;
                                        let x = ox * w + dx;
                                        acc += src[base + (c * self.in_h + y) * self.in_w + x];
                                    }
                                }
                                out[oidx] = acc / area;
                            }
                        }
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_argmax = argmax;
            self.cached_batch = batch;
        }
        Tensor::from_vec(out, [batch, out_feat]).map_err(NnError::from)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_batch == 0 {
            return Err(NnError::BackwardBeforeForward { layer: self.name() });
        }
        let batch = self.cached_batch;
        let in_feat = self.in_features();
        let (oh, ow) = self.output_hw();
        let out_feat = self.channels * oh * ow;
        if grad_out.rank() != 2 || grad_out.dims() != [batch, out_feat] {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: out_feat,
                actual: if grad_out.rank() == 2 { grad_out.dims()[1] } else { grad_out.len() },
            });
        }
        let mut grad_in = vec![0.0f32; batch * in_feat];
        let g = grad_out.as_slice();
        match self.kind {
            PoolKind::Max => {
                let argmax = self
                    .cached_argmax
                    .as_ref()
                    .ok_or(NnError::BackwardBeforeForward { layer: self.name() })?;
                for (oidx, &src_idx) in argmax.iter().enumerate() {
                    grad_in[src_idx] += g[oidx];
                }
            }
            PoolKind::Average => {
                let w = self.window;
                let inv_area = 1.0 / (w * w) as f32;
                for s in 0..batch {
                    let base = s * in_feat;
                    for c in 0..self.channels {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let share = g[s * out_feat + (c * oh + oy) * ow + ox] * inv_area;
                                for dy in 0..w {
                                    for dx in 0..w {
                                        let y = oy * w + dy;
                                        let x = ox * w + dx;
                                        grad_in[base + (c * self.in_h + y) * self.in_w + x] +=
                                            share;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(grad_in, [batch, in_feat]).map_err(NnError::from)
    }

    fn in_features(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    fn out_features(&self) -> usize {
        let (oh, ow) = self.output_hw();
        self.channels * oh * ow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_divisibility() {
        assert!(Pool2d::new(PoolKind::Max, 1, (5, 4), 2).is_err());
        assert!(Pool2d::new(PoolKind::Max, 1, (4, 4), 0).is_err());
        assert!(Pool2d::new(PoolKind::Max, 1, (4, 4), 2).is_ok());
    }

    #[test]
    fn max_pool_selects_maxima() {
        let mut p = Pool2d::new(PoolKind::Max, 1, (4, 4), 2).unwrap();
        let x = Tensor::from_fn([1, 16], |i| i as f32);
        let y = p.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let mut p = Pool2d::new(PoolKind::Average, 1, (2, 2), 2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], [1, 4]).unwrap();
        let y = p.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
    }

    #[test]
    fn max_backward_routes_to_argmax() {
        let mut p = Pool2d::new(PoolKind::Max, 1, (2, 2), 2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 9.0, 5.0, 7.0], [1, 4]).unwrap();
        p.forward(&x, Mode::Train).unwrap();
        let dx = p.backward(&Tensor::from_vec(vec![2.5], [1, 1]).unwrap()).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn avg_backward_spreads_evenly() {
        let mut p = Pool2d::new(PoolKind::Average, 1, (2, 2), 2).unwrap();
        let x = Tensor::ones([1, 4]);
        p.forward(&x, Mode::Train).unwrap();
        let dx = p.backward(&Tensor::from_vec(vec![4.0], [1, 1]).unwrap()).unwrap();
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn multi_channel_multi_batch() {
        let mut p = Pool2d::new(PoolKind::Max, 2, (2, 2), 2).unwrap();
        let x = Tensor::from_fn([3, 8], |i| (i % 8) as f32);
        let y = p.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(&y.as_slice()[0..2], &[3.0, 7.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut p = Pool2d::new(PoolKind::Max, 1, (2, 2), 2).unwrap();
        assert!(p.backward(&Tensor::ones([1, 1])).is_err());
    }

    #[test]
    fn rejects_bad_widths() {
        let mut p = Pool2d::new(PoolKind::Max, 1, (4, 4), 2).unwrap();
        assert!(p.forward(&Tensor::ones([1, 15]), Mode::Eval).is_err());
        p.forward(&Tensor::ones([1, 16]), Mode::Train).unwrap();
        assert!(p.backward(&Tensor::ones([1, 5])).is_err());
    }
}
