//! Weight regularization: classic L2 and the paper's two-segment skewed
//! penalty (eqs. 8–10).
//!
//! The paper replaces the L2 term `R(W) = Σ λ‖Wᵢ‖²` of the cost function
//! (eq. 2) with two one-sided quadratic terms around a per-layer *reference
//! weight* `βᵢ`:
//!
//! ```text
//! R1(W) = Σᵢ λ₁‖Wᵢ − βᵢ‖²   for weights Wᵢ < βᵢ      (eq. 9)
//! R2(W) = Σᵢ λ₂‖Wᵢ − βᵢ‖²   for weights Wᵢ ≥ βᵢ      (eq. 10)
//! ```
//!
//! With `λ₁ ≫ λ₂` the left side of `βᵢ` is penalized strongly, producing the
//! skewed weight distribution of Fig. 6(a): most weights concentrate just
//! right of `βᵢ`, i.e. toward small conductances / large resistances once
//! mapped onto memristors. `βᵢ` is chosen as `c · σᵢ` where `σᵢ` is the
//! standard deviation of the layer's (quasi-normal, zero-mean) weights —
//! exactly the recipe of the paper's Table II.

use crate::layer::ParamKind;

/// A differentiable penalty on weights, applied per layer.
///
/// Implementations receive the index of the *mappable* layer (counting only
/// layers with weight matrices, in network order) so per-layer constants
/// like `βᵢ` can differ. Biases are never regularized — the trait is only
/// consulted for [`ParamKind::Weight`] tensors.
pub trait Regularizer {
    /// The penalty contribution of a single weight in layer `layer`.
    fn penalty(&self, layer: usize, w: f32) -> f64;

    /// The gradient of the penalty w.r.t. a single weight in layer `layer`.
    fn grad(&self, layer: usize, w: f32) -> f32;

    /// Total penalty over a slice of weights.
    fn penalty_sum(&self, layer: usize, weights: &[f32]) -> f64 {
        weights.iter().map(|&w| self.penalty(layer, w)).sum()
    }
}

/// No regularization. Useful as a baseline and for hardware fine-tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoRegularizer;

impl Regularizer for NoRegularizer {
    fn penalty(&self, _layer: usize, _w: f32) -> f64 {
        0.0
    }

    fn grad(&self, _layer: usize, _w: f32) -> f32 {
        0.0
    }
}

/// Classic L2 weight decay: `λ·w²` per weight (paper eq. 2, `R(W)` term).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2 {
    /// Penalty strength `λ`.
    pub lambda: f32,
}

impl L2 {
    /// Creates an L2 regularizer with strength `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f32) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be finite and >= 0");
        L2 { lambda }
    }
}

impl Regularizer for L2 {
    fn penalty(&self, _layer: usize, w: f32) -> f64 {
        (self.lambda * w * w) as f64
    }

    fn grad(&self, _layer: usize, w: f32) -> f32 {
        2.0 * self.lambda * w
    }
}

/// The paper's two-segment skewed regularizer (eqs. 8–10).
///
/// Weights in layer `i` are pulled toward the reference weight `betas[i]`,
/// with asymmetric strength: `lambda1` left of the reference (pushes weights
/// up and out of the strongly-penalized region) and `lambda2` right of it
/// (concentrates the bulk just above the reference).
///
/// # Examples
///
/// ```
/// use memaging_nn::{Regularizer, SkewedL2};
///
/// let reg = SkewedL2::new(vec![0.1], 5e-3, 5e-4);
/// // Left of beta: strong pull toward beta (negative gradient direction).
/// assert!(reg.grad(0, 0.0) < 0.0);
/// // Right of beta: weak pull back toward beta.
/// assert!(reg.grad(0, 0.5) > 0.0);
/// assert!(reg.penalty(0, 0.0) > reg.penalty(0, 0.2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SkewedL2 {
    betas: Vec<f32>,
    lambda1: f32,
    lambda2: f32,
}

impl SkewedL2 {
    /// Creates a skewed regularizer with per-layer reference weights `betas`
    /// and penalties `lambda1` (left of β, should be the larger) / `lambda2`
    /// (right of β).
    ///
    /// # Panics
    ///
    /// Panics if either lambda is negative/non-finite or `betas` is empty.
    pub fn new(betas: Vec<f32>, lambda1: f32, lambda2: f32) -> Self {
        assert!(!betas.is_empty(), "need at least one layer beta");
        assert!(lambda1.is_finite() && lambda1 >= 0.0, "lambda1 must be finite and >= 0");
        assert!(lambda2.is_finite() && lambda2 >= 0.0, "lambda2 must be finite and >= 0");
        SkewedL2 { betas, lambda1, lambda2 }
    }

    /// Builds per-layer references `βᵢ = c · σᵢ` from layer weight standard
    /// deviations, the paper's Table II recipe.
    ///
    /// # Panics
    ///
    /// Panics like [`SkewedL2::new`].
    pub fn from_layer_stds(stds: &[f32], c: f32, lambda1: f32, lambda2: f32) -> Self {
        let betas = stds.iter().map(|&s| c * s).collect();
        SkewedL2::new(betas, lambda1, lambda2)
    }

    /// The reference weight for layer `layer` (the last beta is reused for
    /// any deeper layer, so a truncated beta list stays safe).
    pub fn beta(&self, layer: usize) -> f32 {
        self.betas[layer.min(self.betas.len() - 1)]
    }

    /// Left-side penalty strength `λ₁`.
    pub fn lambda1(&self) -> f32 {
        self.lambda1
    }

    /// Right-side penalty strength `λ₂`.
    pub fn lambda2(&self) -> f32 {
        self.lambda2
    }
}

impl Regularizer for SkewedL2 {
    fn penalty(&self, layer: usize, w: f32) -> f64 {
        let beta = self.beta(layer);
        let d = w - beta;
        let lambda = if w < beta { self.lambda1 } else { self.lambda2 };
        (lambda * d * d) as f64
    }

    fn grad(&self, layer: usize, w: f32) -> f32 {
        let beta = self.beta(layer);
        let d = w - beta;
        let lambda = if w < beta { self.lambda1 } else { self.lambda2 };
        2.0 * lambda * d
    }
}

/// Which regularization strategy a training run uses. This is the switch the
/// experiments flip between the paper's `T` (traditional training, L2) and
/// `ST` (skewed training) configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightPenalty {
    /// No penalty.
    None,
    /// Classic L2 (paper baseline `T`).
    L2(L2),
    /// Two-segment skewed penalty (paper `ST`).
    Skewed(SkewedL2),
}

impl Regularizer for WeightPenalty {
    fn penalty(&self, layer: usize, w: f32) -> f64 {
        match self {
            WeightPenalty::None => 0.0,
            WeightPenalty::L2(r) => r.penalty(layer, w),
            WeightPenalty::Skewed(r) => r.penalty(layer, w),
        }
    }

    fn grad(&self, layer: usize, w: f32) -> f32 {
        match self {
            WeightPenalty::None => 0.0,
            WeightPenalty::L2(r) => r.grad(layer, w),
            WeightPenalty::Skewed(r) => r.grad(layer, w),
        }
    }
}

/// A per-layer composite: layer `i` uses `penalties[i]` (the last entry is
/// reused for deeper layers). This lets a training plan, for example, skew
/// only the fully-connected layers of a conv net while keeping plain L2 on
/// the small convolution kernels that cannot absorb a strong penalty.
///
/// # Examples
///
/// ```
/// use memaging_nn::{PerLayer, Regularizer, SkewedL2, WeightPenalty, L2};
///
/// let reg = PerLayer::new(vec![
///     WeightPenalty::L2(L2::new(1e-4)),                          // conv layer
///     WeightPenalty::Skewed(SkewedL2::new(vec![0.1], 0.3, 1e-3)), // fc layer
/// ]);
/// assert!(reg.grad(0, -1.0).abs() < reg.grad(1, -1.0).abs());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerLayer {
    penalties: Vec<WeightPenalty>,
}

impl PerLayer {
    /// Creates a per-layer composite.
    ///
    /// # Panics
    ///
    /// Panics if `penalties` is empty.
    pub fn new(penalties: Vec<WeightPenalty>) -> Self {
        assert!(!penalties.is_empty(), "need at least one layer penalty");
        PerLayer { penalties }
    }

    /// The penalty assigned to `layer`.
    pub fn layer_penalty(&self, layer: usize) -> &WeightPenalty {
        &self.penalties[layer.min(self.penalties.len() - 1)]
    }
}

impl Regularizer for PerLayer {
    fn penalty(&self, layer: usize, w: f32) -> f64 {
        self.layer_penalty(layer).penalty(layer, w)
    }

    fn grad(&self, layer: usize, w: f32) -> f32 {
        self.layer_penalty(layer).grad(layer, w)
    }
}

/// Returns `true` iff regularizers apply to this parameter kind: weights
/// are regularized, biases (digital peripheral registers) are not.
pub fn applies_to(kind: ParamKind) -> bool {
    kind == ParamKind::Weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_penalty_and_grad_match() {
        let r = L2::new(0.1);
        assert!((r.penalty(0, 2.0) - 0.4).abs() < 1e-6);
        assert!((r.grad(0, 2.0) - 0.4).abs() < 1e-6);
        // Numeric check: d/dw (λw²) at w=1.5
        let eps = 1e-3;
        let numeric =
            ((r.penalty(0, 1.5 + eps) - r.penalty(0, 1.5 - eps)) / (2.0 * eps as f64)) as f32;
        assert!((numeric - r.grad(0, 1.5)).abs() < 1e-3);
    }

    #[test]
    fn skewed_penalizes_left_harder() {
        let r = SkewedL2::new(vec![0.0], 1.0, 0.01);
        // Same distance from beta on both sides.
        assert!(r.penalty(0, -0.5) > r.penalty(0, 0.5) * 50.0);
    }

    #[test]
    fn skewed_gradient_points_toward_beta() {
        let r = SkewedL2::new(vec![0.2], 1e-2, 1e-3);
        // Gradient descent step is w -= lr * grad, so grad < 0 pushes w up.
        assert!(r.grad(0, 0.0) < 0.0);
        assert!(r.grad(0, 1.0) > 0.0);
        assert_eq!(r.grad(0, 0.2), 0.0);
    }

    #[test]
    fn skewed_numeric_gradient_check() {
        let r = SkewedL2::new(vec![0.1], 2e-2, 3e-3);
        let eps = 1e-4;
        for w in [-0.5f32, -0.1, 0.05, 0.3, 0.8] {
            let numeric =
                ((r.penalty(0, w + eps) - r.penalty(0, w - eps)) / (2.0 * eps as f64)) as f32;
            assert!((numeric - r.grad(0, w)).abs() < 1e-3, "skewed grad mismatch at w={w}");
        }
    }

    #[test]
    fn per_layer_betas_and_overflow_reuse() {
        let r = SkewedL2::new(vec![0.1, 0.2], 1.0, 1.0);
        assert_eq!(r.beta(0), 0.1);
        assert_eq!(r.beta(1), 0.2);
        assert_eq!(r.beta(7), 0.2, "deep layers reuse last beta");
    }

    #[test]
    fn from_layer_stds_scales() {
        let r = SkewedL2::from_layer_stds(&[0.5, 1.0], 0.8, 1e-2, 1e-3);
        assert!((r.beta(0) - 0.4).abs() < 1e-6);
        assert!((r.beta(1) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn penalty_sum_matches_elementwise() {
        let r = L2::new(0.5);
        let ws = [1.0f32, -2.0, 3.0];
        let expected: f64 = ws.iter().map(|&w| r.penalty(0, w)).sum();
        assert!((r.penalty_sum(0, &ws) - expected).abs() < 1e-12);
    }

    #[test]
    fn weight_penalty_dispatch() {
        let none = WeightPenalty::None;
        assert_eq!(none.grad(0, 5.0), 0.0);
        let l2 = WeightPenalty::L2(L2::new(0.1));
        assert!(l2.grad(0, 1.0) > 0.0);
        let sk = WeightPenalty::Skewed(SkewedL2::new(vec![0.0], 1.0, 0.1));
        assert!(sk.penalty(0, -1.0) > sk.penalty(0, 1.0));
    }

    #[test]
    fn per_layer_dispatches_by_index() {
        let reg = PerLayer::new(vec![WeightPenalty::None, WeightPenalty::L2(L2::new(1.0))]);
        assert_eq!(reg.grad(0, 2.0), 0.0);
        assert!((reg.grad(1, 2.0) - 4.0).abs() < 1e-6);
        // Deeper layers reuse the last entry.
        assert!((reg.grad(9, 2.0) - 4.0).abs() < 1e-6);
        assert_eq!(reg.penalty(0, 2.0), 0.0);
        assert!((reg.penalty(1, 2.0) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn applies_only_to_weights() {
        assert!(applies_to(ParamKind::Weight));
        assert!(!applies_to(ParamKind::Bias));
    }
}
