//! Sequential network container.

use memaging_tensor::Tensor;

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode, ParamKind};
use crate::loss::{accuracy, softmax_cross_entropy, LossOutput};

/// A feed-forward stack of [`Layer`]s.
///
/// The network validates at construction time that consecutive layers agree
/// on feature counts, runs forward/backward passes, and exposes the mappable
/// weight matrices (dense weights and flattened convolution kernels) that the
/// crossbar crate programs onto memristor arrays.
///
/// # Examples
///
/// ```
/// use memaging_nn::{Activation, ActivationFn, Dense, Mode, Network};
/// use memaging_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memaging_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Network::new(vec![
///     Box::new(Dense::new(4, 8, &mut rng)),
///     Box::new(Activation::new(ActivationFn::Relu, 8)),
///     Box::new(Dense::new(8, 3, &mut rng)),
/// ])?;
/// let logits = net.forward(&Tensor::ones([2, 4]), Mode::Eval)?;
/// assert_eq!(logits.dims(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Network").field("layers", &names).finish()
    }
}

impl Clone for Network {
    /// Deep-copies every layer via [`Layer::clone_box`], so parallel workers
    /// can evaluate independent copies of the same trained network.
    fn clone(&self) -> Self {
        Network { layers: self.layers.iter().map(|l| l.clone_box()).collect() }
    }
}

impl Network {
    /// Creates a network, validating inter-layer feature compatibility.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for an empty stack or mismatched
    /// consecutive feature counts.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::InvalidConfig {
                reason: "network needs at least one layer".into(),
            });
        }
        for pair in layers.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.out_features() != b.in_features() {
                return Err(NnError::InvalidConfig {
                    reason: format!(
                        "layer `{}` outputs {} features but `{}` expects {}",
                        a.name(),
                        a.out_features(),
                        b.name(),
                        b.in_features()
                    ),
                });
            }
        }
        Ok(Network { layers })
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Flattened input feature count.
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features()
    }

    /// Output (class logit) count.
    pub fn out_features(&self) -> usize {
        self.layers.last().expect("nonempty").out_features()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable layer access for the in-crate quantized forward path.
    pub(crate) fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Runs a forward pass over a `[batch, in_features]` input.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs the forward pass starting at layer `start` on an activation that
    /// has already passed through layers `0..start` — the replay entry point
    /// of the crossbar crate's incremental range-selection engine: the
    /// calibration batch is forwarded through the unchanged prefix once per
    /// sweep, and every candidate window replays only the suffix from the
    /// cached activation.
    ///
    /// `forward_from(0, x, mode)` is exactly [`Network::forward`]: layers are
    /// applied in the same order with the same code path, so splitting a
    /// forward pass at any boundary is bit-identical to running it whole.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `start` exceeds the layer
    /// count, and propagates the first layer error encountered.
    pub fn forward_from(
        &mut self,
        start: usize,
        input: &Tensor,
        mode: Mode,
    ) -> Result<Tensor, NnError> {
        if start > self.layers.len() {
            return Err(NnError::InvalidConfig {
                reason: format!("forward_from start {start} exceeds {} layers", self.layers.len()),
            });
        }
        let mut x = input.clone();
        for layer in &mut self.layers[start..] {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs the forward pass of layers `0..end` only, returning the
    /// intermediate activation that [`Network::forward_from`]`(end, ..)`
    /// accepts. `forward_prefix(num_layers(), ..)` is the full forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `end` exceeds the layer count,
    /// and propagates the first layer error encountered.
    pub fn forward_prefix(
        &mut self,
        end: usize,
        input: &Tensor,
        mode: Mode,
    ) -> Result<Tensor, NnError> {
        if end > self.layers.len() {
            return Err(NnError::InvalidConfig {
                reason: format!("forward_prefix end {end} exceeds {} layers", self.layers.len()),
            });
        }
        let mut x = input.clone();
        for layer in &mut self.layers[..end] {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs a single layer's forward pass — the hook the analog crossbar
    /// executor uses to run the digital periphery (activations, pooling)
    /// around its own handling of the mappable layers.
    ///
    /// # Errors
    ///
    /// Propagates the layer's error; index out of range is an
    /// [`NnError::InvalidConfig`].
    pub fn forward_layer(
        &mut self,
        index: usize,
        input: &Tensor,
        mode: Mode,
    ) -> Result<Tensor, NnError> {
        let layer = self.layers.get_mut(index).ok_or(NnError::InvalidConfig {
            reason: format!("layer index {index} out of range"),
        })?;
        layer.forward(input, mode)
    }

    /// Runs a backward pass from a `[batch, out_features]` logit gradient,
    /// accumulating parameter gradients in every layer.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered (including
    /// [`NnError::BackwardBeforeForward`]).
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Forward + loss + backward in one call; returns the loss output.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn train_step(&mut self, input: &Tensor, labels: &[usize]) -> Result<LossOutput, NnError> {
        let logits = self.forward(input, Mode::Train)?;
        let out = softmax_cross_entropy(&logits, labels)?;
        self.backward(&out.grad_logits)?;
        Ok(out)
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Visits every `(layer_index_in_network, kind, param, grad)`; the layer
    /// index passed to `visitor` counts only *mappable* layers (those with
    /// weight matrices), matching the regularizer's per-layer constants.
    pub fn visit_params(
        &mut self,
        visitor: &mut dyn FnMut(usize, ParamKind, &mut Tensor, &Tensor),
    ) {
        let mut mappable = 0usize;
        for layer in &mut self.layers {
            let has_weights = layer.weight_matrix().is_some();
            let idx = mappable;
            layer.visit_params(&mut |kind, p, g| visitor(idx, kind, p, g));
            if has_weights {
                mappable += 1;
            }
        }
    }

    /// Classification accuracy on a `[batch, in_features]` matrix.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn evaluate(&mut self, input: &Tensor, labels: &[usize]) -> Result<f64, NnError> {
        let logits = self.forward(input, Mode::Eval)?;
        accuracy(&logits, labels)
    }

    /// Indices (into `self.layers()`) of layers that own a mappable weight
    /// matrix, in network order.
    pub fn mappable_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.weight_matrix().is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Clones the mappable weight matrices, in network order.
    pub fn weight_matrices(&self) -> Vec<Tensor> {
        self.layers.iter().filter_map(|l| l.weight_matrix().cloned()).collect()
    }

    /// Borrows the `mappable_index`-th mappable weight matrix without
    /// cloning, or `None` when out of range.
    pub fn weight_matrix(&self, mappable_index: usize) -> Option<&Tensor> {
        self.layers.iter().filter_map(|l| l.weight_matrix()).nth(mappable_index)
    }

    /// The [`LayerKind`] of each mappable layer, in network order — used to
    /// separate conv from FC aging in the lifetime study.
    pub fn mappable_kinds(&self) -> Vec<LayerKind> {
        self.layers.iter().filter(|l| l.weight_matrix().is_some()).map(|l| l.kind()).collect()
    }

    /// Overwrites the mappable weight matrices (e.g. with hardware-read
    /// values), in network order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the count or any shape differs.
    pub fn set_weight_matrices(&mut self, weights: &[Tensor]) -> Result<(), NnError> {
        let mappable: Vec<usize> = self.mappable_layers();
        if weights.len() != mappable.len() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "expected {} weight matrices, got {}",
                    mappable.len(),
                    weights.len()
                ),
            });
        }
        for (idx, w) in mappable.into_iter().zip(weights) {
            let target =
                self.layers[idx].weight_matrix_mut().expect("mappable layer has weight matrix");
            if target.shape() != w.shape() {
                return Err(NnError::InvalidConfig {
                    reason: format!(
                        "weight shape mismatch at layer {idx}: {} vs {}",
                        target.shape(),
                        w.shape()
                    ),
                });
            }
            *target = w.clone();
        }
        Ok(())
    }

    /// Network layer index of the `mappable_index`-th mappable layer, or
    /// `None` when out of range. Equivalent to
    /// `self.mappable_layers().get(mappable_index)` without the allocation.
    pub fn mappable_layer_index(&self, mappable_index: usize) -> Option<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.weight_matrix().is_some())
            .nth(mappable_index)
            .map(|(i, _)| i)
    }

    /// Overwrites a single mappable layer's weight matrix in place from a
    /// flat row-major slice — the allocation-free write used by the
    /// incremental candidate-evaluation engine, which replays hundreds of
    /// candidate weight matrices per sweep.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `mappable_index` is out of
    /// range or `values` does not match the matrix's element count.
    pub fn set_weight_matrix(
        &mut self,
        mappable_index: usize,
        values: &[f32],
    ) -> Result<(), NnError> {
        let Some(layer_idx) = self.mappable_layer_index(mappable_index) else {
            return Err(NnError::InvalidConfig {
                reason: format!("mappable layer index {mappable_index} out of range"),
            });
        };
        let target =
            self.layers[layer_idx].weight_matrix_mut().expect("mappable layer has weight matrix");
        if target.len() != values.len() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "weight length mismatch at layer {layer_idx}: {} vs {}",
                    target.len(),
                    values.len()
                ),
            });
        }
        target.as_mut_slice().copy_from_slice(values);
        Ok(())
    }

    /// Per-mappable-layer standard deviation of weights — the `σᵢ` feeding
    /// the skewed regularizer's `βᵢ = c·σᵢ`.
    pub fn weight_stds(&self) -> Vec<f32> {
        self.weight_matrices()
            .iter()
            .map(|w| {
                let s = memaging_tensor::stats::Summary::of(w.as_slice());
                s.std as f32
            })
            .collect()
    }

    /// Returns `true` if every parameter is finite.
    pub fn all_finite(&mut self) -> bool {
        let mut ok = true;
        self.visit_params(&mut |_, _, p, _| {
            if !p.all_finite() {
                ok = false;
            }
        });
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Activation, ActivationFn};
    use crate::dense::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Box::new(Dense::new(4, 6, &mut rng)),
            Box::new(Activation::new(ActivationFn::Tanh, 6)),
            Box::new(Dense::new(6, 3, &mut rng)),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_incompatible_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let err = Network::new(vec![
            Box::new(Dense::new(4, 6, &mut rng)) as Box<dyn Layer>,
            Box::new(Dense::new(5, 3, &mut rng)),
        ]);
        assert!(matches!(err, Err(NnError::InvalidConfig { .. })));
        assert!(Network::new(vec![]).is_err());
    }

    #[test]
    fn forward_shape() {
        let mut net = mlp(1);
        let y = net.forward(&Tensor::ones([5, 4]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[5, 3]);
        assert_eq!(net.in_features(), 4);
        assert_eq!(net.out_features(), 3);
    }

    #[test]
    fn train_step_produces_gradients() {
        let mut net = mlp(2);
        let x = Tensor::ones([2, 4]);
        let out = net.train_step(&x, &[0, 2]).unwrap();
        assert!(out.loss > 0.0);
        let mut nonzero = 0;
        net.visit_params(&mut |_, _, _, g| {
            if g.as_slice().iter().any(|&v| v != 0.0) {
                nonzero += 1;
            }
        });
        assert!(nonzero >= 3, "expected gradients in most params, got {nonzero}");
        net.zero_grads();
        net.visit_params(&mut |_, _, _, g| {
            assert!(g.as_slice().iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn visit_params_reports_mappable_layer_indices() {
        let mut net = mlp(3);
        let mut indices = Vec::new();
        net.visit_params(&mut |layer, kind, _, _| {
            if kind == ParamKind::Weight {
                indices.push(layer);
            }
        });
        assert_eq!(indices, vec![0, 1], "two dense layers -> mappable indices 0 and 1");
    }

    #[test]
    fn weight_matrices_round_trip() {
        let mut net = mlp(4);
        let ws = net.weight_matrices();
        assert_eq!(ws.len(), 2);
        let mut modified = ws.clone();
        modified[0].as_mut_slice()[0] = 42.0;
        net.set_weight_matrices(&modified).unwrap();
        assert_eq!(net.weight_matrices()[0].as_slice()[0], 42.0);
        // Wrong count rejected.
        assert!(net.set_weight_matrices(&ws[..1]).is_err());
        // Wrong shape rejected.
        let bad = vec![Tensor::zeros([1, 1]), Tensor::zeros([6, 3])];
        assert!(net.set_weight_matrices(&bad).is_err());
    }

    #[test]
    fn forward_from_zero_matches_full_forward_bitwise() {
        let mut net = mlp(10);
        let x = Tensor::from_fn([5, 4], |i| (i as f32 * 0.3) - ((i % 4) as f32 * 0.7));
        let full = net.forward(&x, Mode::Eval).unwrap();
        let replay = net.forward_from(0, &x, Mode::Eval).unwrap();
        assert_eq!(full.as_slice(), replay.as_slice());
    }

    #[test]
    fn prefix_then_suffix_matches_full_forward_bitwise() {
        let mut net = mlp(11);
        let x = Tensor::from_fn([3, 4], |i| i as f32 * 0.1 - 0.2);
        let full = net.forward(&x, Mode::Eval).unwrap();
        for split in 0..=net.num_layers() {
            let prefix = net.forward_prefix(split, &x, Mode::Eval).unwrap();
            let out = net.forward_from(split, &prefix, Mode::Eval).unwrap();
            assert_eq!(full.as_slice(), out.as_slice(), "split at layer {split} must be exact");
        }
        assert!(net.forward_from(net.num_layers() + 1, &x, Mode::Eval).is_err());
        assert!(net.forward_prefix(net.num_layers() + 1, &x, Mode::Eval).is_err());
    }

    #[test]
    fn set_weight_matrix_writes_in_place() {
        let mut net = mlp(12);
        let mut flat = net.weight_matrices()[1].as_slice().to_vec();
        flat[3] = -9.5;
        net.set_weight_matrix(1, &flat).unwrap();
        assert_eq!(net.weight_matrices()[1].as_slice()[3], -9.5);
        assert_eq!(net.mappable_layer_index(0), Some(0));
        assert_eq!(
            net.mappable_layer_index(1),
            Some(2),
            "dense layers sit at 0 and 2 (tanh between)"
        );
        assert_eq!(net.mappable_layer_index(2), None);
        // Wrong index and wrong length rejected.
        assert!(net.set_weight_matrix(2, &flat).is_err());
        assert!(net.set_weight_matrix(1, &flat[..4]).is_err());
    }

    #[test]
    fn mappable_kinds() {
        let net = mlp(5);
        assert_eq!(
            net.mappable_kinds(),
            vec![LayerKind::FullyConnected, LayerKind::FullyConnected]
        );
    }

    #[test]
    fn evaluate_on_degenerate_logits() {
        let mut net = mlp(6);
        let acc = net.evaluate(&Tensor::ones([4, 4]), &[0, 1, 2, 0]).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn weight_stds_are_positive() {
        let net = mlp(7);
        let stds = net.weight_stds();
        assert_eq!(stds.len(), 2);
        assert!(stds.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn all_finite_detects_poisoned_weights() {
        let mut net = mlp(8);
        assert!(net.all_finite());
        net.visit_params(&mut |_, kind, p, _| {
            if kind == ParamKind::Weight {
                p.as_mut_slice()[0] = f32::NAN;
            }
        });
        assert!(!net.all_finite());
    }
}
