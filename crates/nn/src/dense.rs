//! Fully-connected (dense) layer.

use memaging_tensor::{init, ops, Tensor};
use rand::Rng;

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode, ParamKind};

/// A fully-connected layer: `y = x · W + b` with `W: [in, out]`.
///
/// This is the layer shape that maps directly onto a memristor crossbar:
/// `W[i][j]` becomes the conductance of the device at row `i`, column `j`.
///
/// # Examples
///
/// ```
/// use memaging_nn::{Dense, Layer, Mode};
/// use memaging_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memaging_nn::NnError> {
/// let mut layer = Dense::new(4, 2, &mut StdRng::seed_from_u64(0));
/// let x = Tensor::ones([3, 4]);
/// let y = layer.forward(&x, Mode::Eval)?;
/// assert_eq!(y.dims(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0 && out_features > 0, "dense dims must be nonzero");
        Dense {
            weights: init::xavier_uniform(
                [in_features, out_features],
                in_features,
                out_features,
                rng,
            ),
            bias: Tensor::zeros([out_features]),
            grad_weights: Tensor::zeros([in_features, out_features]),
            grad_bias: Tensor::zeros([out_features]),
            cached_input: None,
            in_features,
            out_features,
        }
    }

    /// Creates a dense layer from explicit weights and bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `weights` is not rank 2 or
    /// `bias` length differs from the weight column count.
    pub fn from_parts(weights: Tensor, bias: Tensor) -> Result<Self, NnError> {
        if weights.rank() != 2 {
            return Err(NnError::InvalidConfig {
                reason: format!("dense weights must be rank 2, got {}", weights.rank()),
            });
        }
        let (in_f, out_f) = (weights.dims()[0], weights.dims()[1]);
        if bias.len() != out_f {
            return Err(NnError::InvalidConfig {
                reason: format!("bias length {} != out features {}", bias.len(), out_f),
            });
        }
        Ok(Dense {
            grad_weights: Tensor::zeros([in_f, out_f]),
            grad_bias: Tensor::zeros([out_f]),
            cached_input: None,
            in_features: in_f,
            out_features: out_f,
            weights,
            bias,
        })
    }

    /// The weight matrix `[in, out]`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn kind(&self) -> LayerKind {
        LayerKind::FullyConnected
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: "dense",
                expected: self.in_features,
                actual: if input.rank() == 2 { input.dims()[1] } else { input.len() },
            });
        }
        let out = ops::matmul(input, &self.weights)?;
        let out = ops::add_bias_rows(&out, &self.bias)?;
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input =
            self.cached_input.as_ref().ok_or(NnError::BackwardBeforeForward { layer: "dense" })?;
        // dW += x^T · dy ; db += column sums of dy ; dx = dy · W^T
        let dw = ops::matmul_transpose_a(input, grad_out)?;
        self.grad_weights.axpy(1.0, &dw)?;
        let db = ops::sum_rows(grad_out)?;
        self.grad_bias.axpy(1.0, &db)?;
        let dx = ops::matmul_transpose_b(grad_out, &self.weights)?;
        Ok(dx)
    }

    fn in_features(&self) -> usize {
        self.in_features
    }

    fn out_features(&self) -> usize {
        self.out_features
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamKind, &mut Tensor, &Tensor)) {
        visitor(ParamKind::Weight, &mut self.weights, &self.grad_weights);
        visitor(ParamKind::Bias, &mut self.bias, &self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.fill_zero();
        self.grad_bias.fill_zero();
    }

    fn weight_matrix(&self) -> Option<&Tensor> {
        Some(&self.weights)
    }

    fn weight_matrix_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.weights)
    }

    fn bias_vector(&self) -> Option<&Tensor> {
        Some(&self.bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_computes_affine_map() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], [2]).unwrap();
        let mut layer = Dense::from_parts(w, b).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn forward_rejects_wrong_features() {
        let mut layer = Dense::new(3, 2, &mut rng());
        let x = Tensor::ones([1, 4]);
        assert!(matches!(layer.forward(&x, Mode::Eval), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = Dense::new(3, 2, &mut rng());
        let g = Tensor::ones([1, 2]);
        assert!(matches!(layer.backward(&g), Err(NnError::BackwardBeforeForward { .. })));
    }

    #[test]
    fn backward_shapes_and_bias_grad() {
        let mut layer = Dense::new(3, 2, &mut rng());
        let x = Tensor::ones([4, 3]);
        layer.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones([4, 2]);
        let dx = layer.backward(&g).unwrap();
        assert_eq!(dx.dims(), &[4, 3]);
        let mut seen = Vec::new();
        layer.visit_params(&mut |kind, p, gr| {
            seen.push((kind, p.dims().to_vec(), gr.dims().to_vec()));
        });
        assert_eq!(seen[0].0, ParamKind::Weight);
        assert_eq!(seen[1].0, ParamKind::Bias);
        // db = column sums of ones(4x2) = [4, 4]
        let mut bias_grad = None;
        layer.visit_params(&mut |kind, _, gr| {
            if kind == ParamKind::Bias {
                bias_grad = Some(gr.clone());
            }
        });
        assert_eq!(bias_grad.unwrap().as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn numeric_gradient_check() {
        // Finite-difference check of dW for a scalar loss L = sum(y).
        let mut layer = Dense::new(3, 2, &mut rng());
        let x = Tensor::from_fn([2, 3], |i| (i as f32 * 0.7).sin());
        layer.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones([2, 2]); // dL/dy = 1
        layer.backward(&g).unwrap();
        let mut analytic = None;
        layer.visit_params(&mut |kind, _, gr| {
            if kind == ParamKind::Weight {
                analytic = Some(gr.clone());
            }
        });
        let analytic = analytic.unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut plus = layer.clone();
            plus.weights.as_mut_slice()[idx] += eps;
            let yp = plus.forward(&x, Mode::Eval).unwrap().sum();
            let mut minus = layer.clone();
            minus.weights.as_mut_slice()[idx] -= eps;
            let ym = minus.forward(&x, Mode::Eval).unwrap().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (numeric - a).abs() < 1e-2,
                "grad mismatch at {idx}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut layer = Dense::new(2, 2, &mut rng());
        let x = Tensor::ones([1, 2]);
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones([1, 2])).unwrap();
        layer.zero_grads();
        layer.visit_params(&mut |_, _, gr| {
            assert!(gr.as_slice().iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut layer = Dense::new(2, 2, &mut rng());
        let x = Tensor::ones([1, 2]);
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones([1, 2])).unwrap();
        let mut first = None;
        layer.visit_params(&mut |kind, _, gr| {
            if kind == ParamKind::Weight {
                first = Some(gr.clone());
            }
        });
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones([1, 2])).unwrap();
        layer.visit_params(&mut |kind, _, gr| {
            if kind == ParamKind::Weight {
                let f = first.as_ref().unwrap();
                for (a, b) in gr.as_slice().iter().zip(f.as_slice()) {
                    assert!((a - 2.0 * b).abs() < 1e-5);
                }
            }
        });
    }

    #[test]
    fn from_parts_validates() {
        assert!(Dense::from_parts(Tensor::zeros([4]), Tensor::zeros([2])).is_err());
        assert!(Dense::from_parts(Tensor::zeros([2, 3]), Tensor::zeros([2])).is_err());
        assert!(Dense::from_parts(Tensor::zeros([2, 3]), Tensor::zeros([3])).is_ok());
    }

    #[test]
    fn weight_matrix_accessors() {
        let mut layer = Dense::new(2, 3, &mut rng());
        assert_eq!(layer.weight_matrix().unwrap().dims(), &[2, 3]);
        layer.weight_matrix_mut().unwrap().as_mut_slice()[0] = 9.0;
        assert_eq!(layer.weights().as_slice()[0], 9.0);
    }
}
