//! Stochastic gradient descent with momentum and pluggable regularization.

use memaging_tensor::Tensor;

use crate::error::NnError;
use crate::layer::ParamKind;
use crate::network::Network;
use crate::regularizer::Regularizer;

/// SGD with classical momentum (paper eq. 3, plus the regularizer gradient).
///
/// Each step applies `v ← μ·v − lr·(∂Cost/∂W)` and `W ← W + v`, where the
/// cost gradient is the accumulated data gradient plus the regularizer's
/// per-weight gradient (the `R(W)` or `R1+R2` term of eqs. 2/8).
///
/// # Examples
///
/// ```
/// use memaging_nn::{Dense, Network, Sgd, NoRegularizer};
/// use memaging_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memaging_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Network::new(vec![Box::new(Dense::new(2, 2, &mut rng))])?;
/// let mut opt = Sgd::new(0.1, 0.9)?;
/// net.train_step(&Tensor::ones([1, 2]), &[0])?;
/// opt.step(&mut net, &NoRegularizer)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] unless `learning_rate > 0` and
    /// `0 <= momentum < 1`.
    pub fn new(learning_rate: f32, momentum: f32) -> Result<Self, NnError> {
        if !learning_rate.is_finite() || learning_rate <= 0.0 {
            return Err(NnError::InvalidConfig {
                reason: format!("learning rate {learning_rate} must be finite and > 0"),
            });
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::InvalidConfig {
                reason: format!("momentum {momentum} not in [0, 1)"),
            });
        }
        Ok(Sgd { learning_rate, momentum, velocities: Vec::new() })
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Changes the learning rate (for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }

    /// Applies one update to every parameter from its accumulated gradient,
    /// then zeroes the gradients.
    ///
    /// The regularizer only contributes to [`ParamKind::Weight`] parameters
    /// (biases live in digital peripheral logic, not on memristors).
    ///
    /// # Errors
    ///
    /// Returns a wrapped tensor error on internal shape mismatch (cannot
    /// happen unless the network was mutated structurally between steps).
    pub fn step<R: Regularizer + ?Sized>(
        &mut self,
        network: &mut Network,
        regularizer: &R,
    ) -> Result<(), NnError> {
        let lr = self.learning_rate;
        let mu = self.momentum;
        let velocities = &mut self.velocities;
        let mut slot = 0usize;
        let mut result: Result<(), NnError> = Ok(());
        network.visit_params(&mut |layer, kind, param, grad| {
            if result.is_err() {
                return;
            }
            if slot == velocities.len() {
                velocities.push(Tensor::zeros(param.shape().clone()));
            }
            let v = &mut velocities[slot];
            slot += 1;
            if v.shape() != param.shape() {
                result = Err(NnError::InvalidConfig {
                    reason: "network structure changed between optimizer steps".into(),
                });
                return;
            }
            let pv = param.as_mut_slice();
            let gv = grad.as_slice();
            let vv = v.as_mut_slice();
            if kind == ParamKind::Weight {
                for i in 0..pv.len() {
                    let g = gv[i] + regularizer.grad(layer, pv[i]);
                    vv[i] = mu * vv[i] - lr * g;
                    pv[i] += vv[i];
                }
            } else {
                for i in 0..pv.len() {
                    vv[i] = mu * vv[i] - lr * gv[i];
                    pv[i] += vv[i];
                }
            }
        });
        network.zero_grads();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::regularizer::{NoRegularizer, SkewedL2, L2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![Box::new(Dense::new(2, 2, &mut rng))]).unwrap()
    }

    #[test]
    fn validates_hyperparameters() {
        assert!(Sgd::new(0.0, 0.0).is_err());
        assert!(Sgd::new(-1.0, 0.0).is_err());
        assert!(Sgd::new(0.1, 1.0).is_err());
        assert!(Sgd::new(0.1, 0.0).is_ok());
    }

    #[test]
    fn step_reduces_loss() {
        let mut net = net(3);
        let mut opt = Sgd::new(0.5, 0.0).unwrap();
        let x = Tensor::from_vec(vec![1.0, -1.0, -1.0, 1.0], [2, 2]).unwrap();
        let labels = [0usize, 1];
        let first = net.train_step(&x, &labels).unwrap().loss;
        opt.step(&mut net, &NoRegularizer).unwrap();
        let mut last = first;
        for _ in 0..20 {
            last = net.train_step(&x, &labels).unwrap().loss;
            opt.step(&mut net, &NoRegularizer).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        // With constant gradient g and momentum mu, step k moves by
        // lr*g*(1+mu+mu^2+...). Verify the second step is larger.
        let mut net1 = net(4);
        let mut net2 = net(4);
        let x = Tensor::ones([1, 2]);
        let mut plain = Sgd::new(0.1, 0.0).unwrap();
        let mut heavy = Sgd::new(0.1, 0.9).unwrap();
        for _ in 0..2 {
            net1.train_step(&x, &[0]).unwrap();
            plain.step(&mut net1, &NoRegularizer).unwrap();
            net2.train_step(&x, &[0]).unwrap();
            heavy.step(&mut net2, &NoRegularizer).unwrap();
        }
        // After two steps the momentum run must have moved farther from init.
        let w_init = net(4).weight_matrices()[0].clone();
        let d1 = net1.weight_matrices()[0].sub(&w_init).unwrap().norm_sq();
        let d2 = net2.weight_matrices()[0].sub(&w_init).unwrap().norm_sq();
        assert!(d2 > d1, "momentum displacement {d2} <= plain {d1}");
    }

    #[test]
    fn l2_shrinks_weights_without_data_gradient() {
        let mut network = net(5);
        let before = network.weight_matrices()[0].norm_sq();
        let mut opt = Sgd::new(0.1, 0.0).unwrap();
        // No train_step: gradients are zero, only the regularizer acts.
        for _ in 0..50 {
            opt.step(&mut network, &L2::new(0.1)).unwrap();
        }
        let after = network.weight_matrices()[0].norm_sq();
        assert!(after < before * 0.2, "L2 failed to shrink: {before} -> {after}");
    }

    #[test]
    fn skewed_regularizer_pulls_weights_toward_beta() {
        let mut network = net(6);
        let beta = 0.3f32;
        let reg = SkewedL2::new(vec![beta], 0.5, 0.05);
        let mut opt = Sgd::new(0.1, 0.0).unwrap();
        for _ in 0..300 {
            opt.step(&mut network, &reg).unwrap();
        }
        let w = network.weight_matrices()[0].clone();
        for &v in w.as_slice() {
            assert!((v - beta).abs() < 0.05, "weight {v} did not converge to beta {beta}");
        }
    }

    #[test]
    fn biases_are_not_regularized() {
        let mut network = net(7);
        // Give the bias a known value; a pure-regularizer step must not move it.
        network.visit_params(&mut |_, kind, p, _| {
            if kind == ParamKind::Bias {
                p.as_mut_slice().fill(1.0);
            }
        });
        let mut opt = Sgd::new(0.1, 0.0).unwrap();
        opt.step(&mut network, &L2::new(10.0)).unwrap();
        network.visit_params(&mut |_, kind, p, _| {
            if kind == ParamKind::Bias {
                assert!(p.as_slice().iter().all(|&v| v == 1.0));
            }
        });
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut network = net(8);
        network.train_step(&Tensor::ones([1, 2]), &[0]).unwrap();
        let mut opt = Sgd::new(0.1, 0.0).unwrap();
        opt.step(&mut network, &NoRegularizer).unwrap();
        network.visit_params(&mut |_, _, _, g| {
            assert!(g.as_slice().iter().all(|&v| v == 0.0));
        });
    }
}
