//! Reference architectures: LeNet-5, VGG-16 and scaled variants.
//!
//! The paper evaluates LeNet-5 on Cifar10 and VGG-16 on Cifar100. This
//! module provides faithful full-size builders (layer structure identical to
//! the originals; shape-tested) plus `*_scaled` variants with reduced channel
//! counts and input sizes that keep the lifetime simulation laptop-scale
//! while preserving the structural property driving the paper's Fig. 11:
//! conv-heavy front ends vs FC back ends.

use rand::Rng;

use crate::activation::{Activation, ActivationFn};
use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::error::NnError;
use crate::layer::Layer;
use crate::network::Network;
use crate::pool::{Pool2d, PoolKind};

/// Builds a multi-layer perceptron with ReLU between dense layers.
///
/// `dims` is `[in, hidden..., out]`.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for fewer than two dims.
pub fn mlp<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Result<Network, NnError> {
    if dims.len() < 2 {
        return Err(NnError::InvalidConfig { reason: "mlp needs at least [in, out] dims".into() });
    }
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for (i, pair) in dims.windows(2).enumerate() {
        layers.push(Box::new(Dense::new(pair[0], pair[1], rng)));
        if i + 2 < dims.len() {
            layers.push(Box::new(Activation::new(ActivationFn::Relu, pair[1])));
        }
    }
    Network::new(layers)
}

/// Builds the classic LeNet-5 (2 conv + 3 FC) for `channels × 32 × 32`
/// inputs, as the paper applies it to Cifar10.
///
/// Structure: conv(6@5×5, pad 2) → ReLU → pool2 → conv(16@5×5) → ReLU →
/// pool2 → FC 120 → ReLU → FC 84 → ReLU → FC `classes`.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes/channels.
pub fn lenet5<R: Rng + ?Sized>(
    channels: usize,
    classes: usize,
    rng: &mut R,
) -> Result<Network, NnError> {
    if channels == 0 || classes == 0 {
        return Err(NnError::InvalidConfig { reason: "channels and classes must be > 0".into() });
    }
    let c1 = Conv2d::new(channels, 6, (32, 32), 5, 1, 2, rng); // 32x32
    let p1 = Pool2d::new(PoolKind::Max, 6, (32, 32), 2)?; // 16x16
    let c2 = Conv2d::new(6, 16, (16, 16), 5, 1, 0, rng); // 12x12
    let p2 = Pool2d::new(PoolKind::Max, 16, (12, 12), 2)?; // 6x6
    let flat = 16 * 6 * 6;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(c1),
        Box::new(Activation::new(ActivationFn::Relu, 6 * 32 * 32)),
        Box::new(p1),
        Box::new(c2),
        Box::new(Activation::new(ActivationFn::Relu, 16 * 12 * 12)),
        Box::new(p2),
        Box::new(Dense::new(flat, 120, rng)),
        Box::new(Activation::new(ActivationFn::Relu, 120)),
        Box::new(Dense::new(120, 84, rng)),
        Box::new(Activation::new(ActivationFn::Relu, 84)),
        Box::new(Dense::new(84, classes, rng)),
    ];
    Network::new(layers)
}

/// A scaled LeNet-5 (same 2-conv/3-FC structure, narrower) for
/// `channels × 12 × 12` inputs — the workhorse of the lifetime experiments.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes/channels.
pub fn lenet5_scaled<R: Rng + ?Sized>(
    channels: usize,
    classes: usize,
    rng: &mut R,
) -> Result<Network, NnError> {
    if channels == 0 || classes == 0 {
        return Err(NnError::InvalidConfig { reason: "channels and classes must be > 0".into() });
    }
    let c1 = Conv2d::new(channels, 8, (12, 12), 3, 1, 1, rng); // 12x12
    let p1 = Pool2d::new(PoolKind::Max, 8, (12, 12), 2)?; // 6x6
    let c2 = Conv2d::new(8, 16, (6, 6), 3, 1, 1, rng); // 6x6
    let p2 = Pool2d::new(PoolKind::Max, 16, (6, 6), 2)?; // 3x3
    let flat = 16 * 3 * 3;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(c1),
        Box::new(Activation::new(ActivationFn::Relu, 8 * 12 * 12)),
        Box::new(p1),
        Box::new(c2),
        Box::new(Activation::new(ActivationFn::Relu, 16 * 6 * 6)),
        Box::new(p2),
        Box::new(Dense::new(flat, 64, rng)),
        Box::new(Activation::new(ActivationFn::Relu, 64)),
        Box::new(Dense::new(64, 48, rng)),
        Box::new(Activation::new(ActivationFn::Relu, 48)),
        Box::new(Dense::new(48, classes, rng)),
    ];
    Network::new(layers)
}

/// VGG-16 channel plan: 13 convolutions in 5 blocks.
const VGG16_PLAN: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];

/// Builds the full VGG-16 (13 conv + 3 FC) for `channels × 32 × 32` inputs,
/// as the paper applies it to Cifar100. This is a large network intended for
/// structural verification and full-scale runs, not for unit tests.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes/channels.
pub fn vgg16<R: Rng + ?Sized>(
    channels: usize,
    classes: usize,
    rng: &mut R,
) -> Result<Network, NnError> {
    vgg_with_plan(channels, classes, 32, &VGG16_PLAN, (512, 512), 5, rng)
}

/// A scaled VGG-16 (identical 13-conv/3-FC topology, narrow channels) for
/// `channels × 16 × 16` inputs — used by the Cifar100 stand-in experiments.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes/channels.
pub fn vgg16_scaled<R: Rng + ?Sized>(
    channels: usize,
    classes: usize,
    rng: &mut R,
) -> Result<Network, NnError> {
    let plan = [(2, 4), (2, 6), (3, 8), (3, 12), (3, 16)];
    vgg_with_plan(channels, classes, 16, &plan, (64, 48), 3, rng)
}

/// Shared VGG constructor: `plan` lists `(convs_per_block, out_channels)` for
/// each of the 5 blocks; a 2× max-pool follows each of the first `max_pools`
/// blocks while the spatial size remains divisible by 2 (the scaled 16×16
/// variant pools only 3 times so the FC head keeps enough features while the
/// full 13-conv depth is preserved).
fn vgg_with_plan<R: Rng + ?Sized>(
    channels: usize,
    classes: usize,
    input_size: usize,
    plan: &[(usize, usize)],
    fc_dims: (usize, usize),
    max_pools: usize,
    rng: &mut R,
) -> Result<Network, NnError> {
    if channels == 0 || classes == 0 {
        return Err(NnError::InvalidConfig { reason: "channels and classes must be > 0".into() });
    }
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut in_c = channels;
    let mut hw = input_size;
    let mut pools_done = 0usize;
    for &(convs, out_c) in plan {
        for _ in 0..convs {
            layers.push(Box::new(Conv2d::new(in_c, out_c, (hw, hw), 3, 1, 1, rng)));
            layers.push(Box::new(Activation::new(ActivationFn::Relu, out_c * hw * hw)));
            in_c = out_c;
        }
        if pools_done < max_pools && hw >= 2 && hw.is_multiple_of(2) {
            layers.push(Box::new(Pool2d::new(PoolKind::Max, in_c, (hw, hw), 2)?));
            hw /= 2;
            pools_done += 1;
        }
    }
    let flat = in_c * hw * hw;
    layers.push(Box::new(Dense::new(flat, fc_dims.0, rng)));
    layers.push(Box::new(Activation::new(ActivationFn::Relu, fc_dims.0)));
    layers.push(Box::new(Dense::new(fc_dims.0, fc_dims.1, rng)));
    layers.push(Box::new(Activation::new(ActivationFn::Relu, fc_dims.1)));
    layers.push(Box::new(Dense::new(fc_dims.1, classes, rng)));
    Network::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{LayerKind, Mode};
    use memaging_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn mlp_builds_and_runs() {
        let mut net = mlp(&[8, 16, 4], &mut rng()).unwrap();
        let y = net.forward(&Tensor::ones([2, 8]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        assert!(mlp(&[8], &mut rng()).is_err());
    }

    #[test]
    fn lenet5_structure() {
        let net = lenet5(3, 10, &mut rng()).unwrap();
        assert_eq!(net.in_features(), 3 * 32 * 32);
        assert_eq!(net.out_features(), 10);
        let kinds = net.mappable_kinds();
        assert_eq!(kinds.len(), 5, "LeNet-5 has 5 mappable layers");
        assert_eq!(
            kinds.iter().filter(|k| **k == LayerKind::Convolution).count(),
            2,
            "2 convolutional layers"
        );
        assert_eq!(
            kinds.iter().filter(|k| **k == LayerKind::FullyConnected).count(),
            3,
            "3 fully-connected layers"
        );
    }

    #[test]
    fn lenet5_forward_shape() {
        let mut net = lenet5(3, 10, &mut rng()).unwrap();
        let y = net.forward(&Tensor::zeros([1, 3 * 32 * 32]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn lenet5_scaled_structure_and_forward() {
        let mut net = lenet5_scaled(1, 10, &mut rng()).unwrap();
        assert_eq!(net.in_features(), 144);
        let kinds = net.mappable_kinds();
        assert_eq!(kinds.len(), 5);
        let y = net.forward(&Tensor::ones([3, 144]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[3, 10]);
    }

    #[test]
    fn vgg16_structure() {
        let net = vgg16(3, 100, &mut rng()).unwrap();
        let kinds = net.mappable_kinds();
        assert_eq!(kinds.len(), 16, "VGG-16 has 16 mappable layers");
        assert_eq!(
            kinds.iter().filter(|k| **k == LayerKind::Convolution).count(),
            13,
            "13 convolutional layers"
        );
        assert_eq!(
            kinds.iter().filter(|k| **k == LayerKind::FullyConnected).count(),
            3,
            "3 fully-connected layers"
        );
        assert_eq!(net.out_features(), 100);
    }

    #[test]
    fn vgg16_scaled_structure_and_forward() {
        let mut net = vgg16_scaled(1, 100, &mut rng()).unwrap();
        let kinds = net.mappable_kinds();
        assert_eq!(kinds.len(), 16);
        assert_eq!(kinds.iter().filter(|k| **k == LayerKind::Convolution).count(), 13);
        let y = net.forward(&Tensor::zeros([1, 256]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 100]);
    }

    #[test]
    fn builders_validate_args() {
        assert!(lenet5(0, 10, &mut rng()).is_err());
        assert!(lenet5(3, 0, &mut rng()).is_err());
        assert!(lenet5_scaled(0, 10, &mut rng()).is_err());
        assert!(vgg16_scaled(1, 0, &mut rng()).is_err());
    }

    #[test]
    fn builders_are_deterministic_per_seed() {
        let a = lenet5_scaled(1, 4, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = lenet5_scaled(1, 4, &mut StdRng::seed_from_u64(1)).unwrap();
        let wa = a.weight_matrices();
        let wb = b.weight_matrices();
        assert_eq!(wa, wb);
    }
}
