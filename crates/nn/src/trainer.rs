//! Mini-batch training loop with accuracy tracking.

use memaging_dataset::Dataset;
use memaging_obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::NnError;
use crate::network::Network;
use crate::optimizer::Sgd;
use crate::regularizer::Regularizer;
use crate::schedule::LrSchedule;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
    /// Shuffle seed (dataset order is re-drawn each epoch).
    pub seed: u64,
    /// Stop early once this training accuracy is reached (1.0 disables).
    pub target_accuracy: f64,
    /// Learning-rate schedule applied per epoch on top of `learning_rate`.
    pub schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            learning_rate: 0.05,
            momentum: 0.9,
            seed: 0,
            target_accuracy: 1.0,
            schedule: LrSchedule::Constant,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub loss: f64,
    /// Training accuracy measured after the epoch.
    pub accuracy: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Telemetry for every completed epoch.
    pub history: Vec<EpochStats>,
    /// Final training accuracy.
    pub final_accuracy: f64,
}

/// Trains `network` on `data` with SGD and the given regularizer.
///
/// This is the paper's "software training" stage (Section II-A): plain
/// backprop on the cross-entropy cost, plus whatever weight penalty the
/// caller supplies — [`L2`](crate::L2) for the `T` baseline,
/// [`SkewedL2`](crate::SkewedL2) for the proposed `ST` configuration.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for bad hyper-parameters,
/// [`NnError::Diverged`] if the loss or weights stop being finite, or any
/// propagated layer error.
///
/// # Examples
///
/// ```
/// use memaging_dataset::{Dataset, SyntheticSpec};
/// use memaging_nn::{models, train, NoRegularizer, TrainConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut data = Dataset::gaussian_blobs(&SyntheticSpec::small(3, 7))?;
/// data.normalize();
/// let mut net = models::mlp(&[144, 16, 3], &mut StdRng::seed_from_u64(0))?;
/// let config = TrainConfig { epochs: 3, ..TrainConfig::default() };
/// let report = train(&mut net, &data, &config, &NoRegularizer)?;
/// assert!(!report.history.is_empty() && report.history.len() <= 3);
/// # Ok(())
/// # }
/// ```
pub fn train<R: Regularizer + ?Sized>(
    network: &mut Network,
    data: &Dataset,
    config: &TrainConfig,
    regularizer: &R,
) -> Result<TrainReport, NnError> {
    train_with_recorder(network, data, config, regularizer, &Recorder::disabled())
}

/// [`train`] with observability: the run is wrapped in a `train` span, and
/// each epoch records `train.epochs`, `train.epoch_loss` and
/// `train.accuracy` on `recorder`. With a disabled recorder this is
/// identical to [`train`].
///
/// # Errors
///
/// Same as [`train`].
pub fn train_with_recorder<R: Regularizer + ?Sized>(
    network: &mut Network,
    data: &Dataset,
    config: &TrainConfig,
    regularizer: &R,
    recorder: &Recorder,
) -> Result<TrainReport, NnError> {
    let _span = recorder.span("train");
    if config.epochs == 0 || config.batch_size == 0 {
        return Err(NnError::InvalidConfig { reason: "epochs and batch_size must be > 0".into() });
    }
    let mut optimizer = Sgd::new(config.learning_rate, config.momentum)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        optimizer.set_learning_rate(config.schedule.rate(config.learning_rate, epoch));
        let shuffled = data.shuffled(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (batch, labels) in shuffled.batches(config.batch_size) {
            let out = network.train_step(&batch, labels)?;
            if !out.loss.is_finite() {
                return Err(NnError::Diverged { epoch });
            }
            loss_sum += out.loss as f64;
            batches += 1;
            optimizer.step(network, regularizer)?;
        }
        if !network.all_finite() {
            return Err(NnError::Diverged { epoch });
        }
        let accuracy = evaluate(network, data, config.batch_size)?;
        let loss = loss_sum / batches.max(1) as f64;
        recorder.counter("train.epochs", 1);
        recorder.observe("train.epoch_loss", loss);
        recorder.gauge("train.accuracy", accuracy);
        history.push(EpochStats { epoch, loss, accuracy });
        if accuracy >= config.target_accuracy {
            break;
        }
    }
    let final_accuracy = history.last().map_or(0.0, |h| h.accuracy);
    Ok(TrainReport { history, final_accuracy })
}

/// Evaluates classification accuracy over a whole dataset in batches.
///
/// # Errors
///
/// Propagates layer errors.
pub fn evaluate(network: &mut Network, data: &Dataset, batch_size: usize) -> Result<f64, NnError> {
    let mut correct = 0.0f64;
    let mut total = 0usize;
    for (batch, labels) in data.batches(batch_size.max(1)) {
        let acc = network.evaluate(&batch, labels)?;
        correct += acc * labels.len() as f64;
        total += labels.len();
    }
    Ok(if total == 0 { 0.0 } else { correct / total as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::regularizer::{NoRegularizer, SkewedL2};
    use memaging_dataset::SyntheticSpec;
    use memaging_tensor::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(classes: usize, seed: u64) -> Dataset {
        let mut d = Dataset::gaussian_blobs(&SyntheticSpec::small(classes, seed)).unwrap();
        d.normalize();
        d
    }

    #[test]
    fn training_reaches_high_accuracy_on_blobs() {
        let data = blobs(4, 1);
        let mut net = models::mlp(&[144, 24, 4], &mut StdRng::seed_from_u64(2)).unwrap();
        let config = TrainConfig { epochs: 15, target_accuracy: 0.97, ..TrainConfig::default() };
        let report = train(&mut net, &data, &config, &NoRegularizer).unwrap();
        assert!(
            report.final_accuracy > 0.9,
            "expected >90% train accuracy, got {}",
            report.final_accuracy
        );
    }

    #[test]
    fn early_stop_on_target_accuracy() {
        let data = blobs(3, 2);
        let mut net = models::mlp(&[144, 16, 3], &mut StdRng::seed_from_u64(3)).unwrap();
        let config = TrainConfig { epochs: 50, target_accuracy: 0.8, ..TrainConfig::default() };
        let report = train(&mut net, &data, &config, &NoRegularizer).unwrap();
        assert!(report.history.len() < 50, "early stop expected");
        assert!(report.final_accuracy >= 0.8);
    }

    #[test]
    fn rejects_bad_config() {
        let data = blobs(2, 3);
        let mut net = models::mlp(&[144, 2], &mut StdRng::seed_from_u64(4)).unwrap();
        let config = TrainConfig { epochs: 0, ..TrainConfig::default() };
        assert!(train(&mut net, &data, &config, &NoRegularizer).is_err());
    }

    #[test]
    fn skewed_training_produces_right_skewed_weights() {
        // The paper's core training claim: with lambda1 >> lambda2 around a
        // positive beta, trained weights concentrate right of their old mass.
        let data = blobs(4, 5);
        let mut net = models::mlp(&[144, 24, 4], &mut StdRng::seed_from_u64(6)).unwrap();
        let pre = TrainConfig { epochs: 8, ..TrainConfig::default() };
        train(&mut net, &data, &pre, &NoRegularizer).unwrap();
        let before: Vec<f32> =
            net.weight_matrices().iter().flat_map(|w| w.as_slice().to_vec()).collect();
        let before_mean = Summary::of(&before).mean;

        let stds = net.weight_stds();
        let reg = SkewedL2::from_layer_stds(&stds, 1.0, 5e-3, 5e-4);
        let post = TrainConfig { epochs: 10, ..TrainConfig::default() };
        let report = train(&mut net, &data, &post, &reg).unwrap();
        let after: Vec<f32> =
            net.weight_matrices().iter().flat_map(|w| w.as_slice().to_vec()).collect();
        let after_sum = Summary::of(&after);
        assert!(
            after_sum.mean > before_mean,
            "skewed training should shift mass right: {before_mean} -> {}",
            after_sum.mean
        );
        assert!(report.final_accuracy > 0.85, "accuracy collapsed: {}", report.final_accuracy);
    }

    #[test]
    fn evaluate_matches_manual_count() {
        let data = blobs(3, 9);
        let mut net = models::mlp(&[144, 16, 3], &mut StdRng::seed_from_u64(8)).unwrap();
        let a = evaluate(&mut net, &data, 7).unwrap();
        let b = evaluate(&mut net, &data, 64).unwrap();
        assert!((a - b).abs() < 1e-9, "batch size must not change accuracy");
    }

    #[test]
    fn cosine_schedule_trains_and_decays() {
        use crate::schedule::LrSchedule;
        let data = blobs(3, 13);
        let mut net = models::mlp(&[144, 16, 3], &mut StdRng::seed_from_u64(14)).unwrap();
        let config = TrainConfig {
            epochs: 8,
            schedule: LrSchedule::Cosine { total_epochs: 8, floor: 0.05 },
            ..TrainConfig::default()
        };
        let report = train(&mut net, &data, &config, &NoRegularizer).unwrap();
        assert!(report.final_accuracy > 0.8, "schedule must not break training");
    }

    #[test]
    fn lenet_scaled_trains_on_blobs() {
        let data = blobs(4, 11);
        let mut net = models::lenet5_scaled(1, 4, &mut StdRng::seed_from_u64(12)).unwrap();
        let config = TrainConfig {
            epochs: 6,
            learning_rate: 0.03,
            target_accuracy: 0.95,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &data, &config, &NoRegularizer).unwrap();
        assert!(
            report.final_accuracy > 0.7,
            "LeNet-scaled should learn blobs, got {}",
            report.final_accuracy
        );
    }
}
