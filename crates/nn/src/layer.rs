//! The [`Layer`] trait: the unit of composition for networks.

use memaging_tensor::Tensor;

use crate::error::NnError;

/// Whether a forward pass is part of training (dropout active, activations
/// cached for backprop) or pure inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic layers are active and activations are cached.
    Train,
    /// Inference: deterministic, no gradient bookkeeping required.
    Eval,
}

/// The structural role of a layer — used by the lifetime study to separate
/// convolutional from fully-connected aging (paper Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution (mappable onto crossbars).
    Convolution,
    /// Fully-connected / dense (mappable onto crossbars).
    FullyConnected,
    /// Element-wise activation.
    Activation,
    /// Spatial pooling.
    Pooling,
    /// Stochastic regularization (dropout).
    Regularization,
}

/// Distinguishes weight tensors (mapped onto memristors, regularized) from
/// bias tensors (kept in peripheral digital logic, not regularized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// A weight matrix/kernel tensor.
    Weight,
    /// A bias vector.
    Bias,
}

/// A differentiable network layer operating on `[batch, features]` matrices.
///
/// Layers own their parameters and gradients. `forward` in [`Mode::Train`]
/// must cache whatever `backward` needs; `backward` consumes the cache and
/// accumulates parameter gradients (they are *not* zeroed implicitly — call
/// [`Layer::zero_grads`] between steps).
///
/// `Send + Sync` is a supertrait so networks can be cloned into parallel
/// workers (e.g. per-worker evaluation copies in the mapping pipeline); all
/// layers are plain owned data, so this costs nothing.
pub trait Layer: Send + Sync {
    /// Short static name for error messages and reports.
    fn name(&self) -> &'static str;

    /// The structural role of this layer.
    fn kind(&self) -> LayerKind;

    /// Computes the layer output for a `[batch, in_features]` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the feature count is wrong, or a
    /// wrapped tensor error.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError>;

    /// Propagates `grad_out` (gradient w.r.t. this layer's output) back to a
    /// gradient w.r.t. its input, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if no forward activations
    /// are cached, or a wrapped tensor error.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError>;

    /// Number of input features this layer expects.
    fn in_features(&self) -> usize;

    /// Number of output features this layer produces.
    fn out_features(&self) -> usize;

    /// Visits every `(kind, parameter, gradient)` triple in a stable order.
    ///
    /// The default implementation visits nothing (parameter-free layer).
    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamKind, &mut Tensor, &Tensor)) {
        let _ = visitor;
    }

    /// Zeroes all parameter gradients. Default: no-op.
    fn zero_grads(&mut self) {}

    /// The layer's mappable weight matrix (kernels flattened to 2-D for
    /// convolutions), if it has one.
    fn weight_matrix(&self) -> Option<&Tensor> {
        None
    }

    /// Mutable access to the mappable weight matrix, if any. Used to write
    /// back hardware-quantized weights before tuning.
    fn weight_matrix_mut(&mut self) -> Option<&mut Tensor> {
        None
    }

    /// The layer's bias vector, if it has one (biases live in digital
    /// peripheral logic; the analog execution path adds them after the
    /// crossbar's column currents are read out).
    fn bias_vector(&self) -> Option<&Tensor> {
        None
    }

    /// Applies this layer's [`Mode::Eval`] forward pass element-wise in
    /// place on a flat activation buffer, returning `true` when supported.
    ///
    /// Shape-preserving, stateless layers (activations; dropout, which is
    /// the identity at inference) override this so the quantized forward
    /// path can run without materializing intermediate tensors. Layers that
    /// change the feature count or need structural context keep the default
    /// and fall back to [`Layer::forward`].
    fn eval_in_place(&self, data: &mut [f32]) -> bool {
        let _ = data;
        false
    }

    /// Clones this layer behind a fresh box, preserving parameters and any
    /// stochastic state (networks are cloned into parallel evaluation
    /// workers, so cached activations need not survive the copy).
    fn clone_box(&self) -> Box<dyn Layer>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_and_kinds_are_comparable() {
        assert_ne!(Mode::Train, Mode::Eval);
        assert_eq!(LayerKind::Convolution, LayerKind::Convolution);
        assert_ne!(ParamKind::Weight, ParamKind::Bias);
    }

    #[derive(Clone)]
    struct Null;
    impl Layer for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn kind(&self) -> LayerKind {
            LayerKind::Activation
        }
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
            Ok(input.clone())
        }
        fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
            Ok(grad_out.clone())
        }
        fn in_features(&self) -> usize {
            0
        }
        fn out_features(&self) -> usize {
            0
        }
        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn default_trait_methods() {
        let mut l = Null;
        let mut visited = 0;
        l.visit_params(&mut |_, _, _| visited += 1);
        assert_eq!(visited, 0);
        l.zero_grads();
        assert!(l.weight_matrix().is_none());
        assert!(l.weight_matrix_mut().is_none());
    }
}
