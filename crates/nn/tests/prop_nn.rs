//! Property-based tests for the neural-network stack: gradient correctness
//! on random shapes, loss-function invariants, regularizer identities.

use memaging_nn::loss::softmax_cross_entropy;
use memaging_nn::{
    Activation, ActivationFn, Dense, Layer, Mode, Network, NoRegularizer, ParamKind, Regularizer,
    Sgd, SkewedL2, L2,
};
use memaging_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dense_gradient_check_random_shapes(
        inputs in 1usize..6,
        outputs in 1usize..5,
        batch in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut layer = Dense::new(inputs, outputs, &mut StdRng::seed_from_u64(seed));
        let x = Tensor::from_fn([batch, inputs], |i| ((i as f32) * 0.37 + seed as f32).sin());
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones([batch, outputs])).unwrap();
        let mut analytic = None;
        layer.visit_params(&mut |kind, _, g| {
            if kind == ParamKind::Weight {
                analytic = Some(g.clone());
            }
        });
        let analytic = analytic.unwrap();
        let eps = 1e-2f32;
        let idx = (seed as usize) % (inputs * outputs);
        let mut plus = layer.clone();
        plus.weight_matrix_mut().unwrap().as_mut_slice()[idx] += eps;
        let mut minus = layer.clone();
        minus.weight_matrix_mut().unwrap().as_mut_slice()[idx] -= eps;
        let fp = plus.forward(&x, Mode::Eval).unwrap().sum();
        let fm = minus.forward(&x, Mode::Eval).unwrap().sum();
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[idx];
        prop_assert!((numeric - a).abs() < 0.05 * (1.0 + a.abs()), "{numeric} vs {a}");
    }

    #[test]
    fn softmax_ce_invariant_to_logit_shift(
        batch in 1usize..4,
        classes in 2usize..6,
        shift in -50.0f32..50.0,
        seed in 0u64..500,
    ) {
        let logits = Tensor::from_fn([batch, classes], |i| ((i as f32) + seed as f32 * 0.1).cos());
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        let base = softmax_cross_entropy(&logits, &labels).unwrap();
        let shifted = logits.map(|x| x + shift);
        let out = softmax_cross_entropy(&shifted, &labels).unwrap();
        prop_assert!((base.loss - out.loss).abs() < 1e-3, "{} vs {}", base.loss, out.loss);
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_bounded_by_uniform_plus(
        batch in 1usize..4,
        classes in 2usize..8,
        seed in 0u64..500,
    ) {
        let logits = Tensor::from_fn([batch, classes], |i| ((i * 7 + seed as usize) as f32 * 0.13).sin());
        let labels: Vec<usize> = (0..batch).map(|i| (i + seed as usize) % classes).collect();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(out.loss >= 0.0);
        prop_assert!(out.loss.is_finite());
    }

    #[test]
    fn sgd_without_gradients_or_regularizer_is_identity(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Activation::new(ActivationFn::Tanh, 4)),
            Box::new(Dense::new(4, 2, &mut rng)),
        ])
        .unwrap();
        let before = net.weight_matrices();
        let mut opt = Sgd::new(0.1, 0.9).unwrap();
        opt.step(&mut net, &NoRegularizer).unwrap();
        prop_assert_eq!(net.weight_matrices(), before);
    }

    #[test]
    fn l2_penalty_is_even_and_skewed_is_not(w in 0.01f32..2.0) {
        let l2 = L2::new(0.1);
        prop_assert!((l2.penalty(0, w) - l2.penalty(0, -w)).abs() < 1e-12);
        let sk = SkewedL2::new(vec![0.0], 1.0, 0.01);
        prop_assert!(sk.penalty(0, -w) > sk.penalty(0, w));
    }

    #[test]
    fn skewed_gradient_is_zero_only_at_beta(beta in -0.5f32..0.5, d in 0.01f32..1.0) {
        let sk = SkewedL2::new(vec![beta], 0.3, 0.01);
        prop_assert_eq!(sk.grad(0, beta), 0.0);
        prop_assert!(sk.grad(0, beta - d) < 0.0);
        prop_assert!(sk.grad(0, beta + d) > 0.0);
    }

    #[test]
    fn network_forward_is_deterministic(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Box::new(Dense::new(5, 6, &mut rng)),
            Box::new(Activation::new(ActivationFn::Relu, 6)),
            Box::new(Dense::new(6, 3, &mut rng)),
        ])
        .unwrap();
        let x = Tensor::from_fn([2, 5], |i| (i as f32 * 0.29).sin());
        let a = net.forward(&x, Mode::Eval).unwrap();
        let b = net.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn set_weight_matrices_round_trips(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Box::new(Dense::new(4, 4, &mut rng)),
            Box::new(Dense::new(4, 2, &mut rng)),
        ])
        .unwrap();
        let ws = net.weight_matrices();
        let doubled: Vec<Tensor> = ws.iter().map(|w| w.scale(2.0)).collect();
        net.set_weight_matrices(&doubled).unwrap();
        prop_assert_eq!(net.weight_matrices(), doubled);
    }
}
