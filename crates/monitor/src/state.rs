//! Shared monitoring state: the wear picture the HTTP tier serves.
//!
//! The lifetime simulator publishes its health telemetry as recorder events
//! (gauges, session summaries, alerts). [`MonitorSink`] is an
//! [`memaging_obs::Sink`] that folds those events into a [`WearState`]
//! behind an `Arc<Mutex<..>>`, which [`crate::MonitorServer`] renders as
//! JSON on `/wear` and `/health` — no changes to the pipeline's signatures,
//! no sharing of the crossbar arrays across threads.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use memaging_obs::{AlertSeverity, Event, Recorder, Sink};

/// Alerts retained for `/wear`; older ones are dropped first.
const MAX_ALERTS: usize = 64;

/// Wear picture of one mappable layer, fed by the `aging.*`/`wear.*`/
/// `health.*` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerWear {
    /// Mean aged upper resistance bound, ohms.
    pub r_max_ohms: f64,
    /// Mean aged lower resistance bound, ohms.
    pub r_min_ohms: f64,
    /// Mean window width as a fraction of fresh.
    pub window_fraction: f64,
    /// Estimated upper-bound shrinkage, ohms per session.
    pub shrink_rate_ohms_per_session: f64,
    /// Forecast sessions to window collapse, if degradation was observed.
    pub sessions_left: Option<f64>,
    /// Worn-out devices in the layer's array.
    pub worn_devices: f64,
    /// Cumulative programming pulses across the layer's array.
    pub pulses: f64,
}

/// Per-tile lifetime forecast, fed by the serving tier's
/// `forecast.*{tile=N}` gauges (the windowed regression over the
/// deterministic wear series, computed once in the serve engine by
/// `memaging_lifetime::trend` — the monitor only mirrors it).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TileForecast {
    /// Latest observed window fraction of the tile.
    pub window_fraction: f64,
    /// Fitted wear velocity, window fraction per maintenance session.
    pub velocity_per_session: f64,
    /// Fitted wear acceleration, window fraction per session squared.
    pub acceleration_per_session2: f64,
    /// Extrapolated sessions until the tile crosses the critical window
    /// fraction; `None` while the trajectory never crosses.
    pub sessions_to_critical: Option<f64>,
}

/// One retained alert.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRecord {
    /// Severity the rule fired at.
    pub severity: AlertSeverity,
    /// Rule name, e.g. `health.window_fraction`.
    pub rule: String,
    /// Session the alert fired under, if any.
    pub session: Option<u64>,
    /// Observed value.
    pub value: f64,
    /// Crossed threshold.
    pub threshold: f64,
    /// Human-readable explanation.
    pub message: String,
}

/// Lifecycle of the monitored run, shown on `/health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The lifetime loop is still running.
    Running,
    /// The loop finished without a failing session (hit the session cap).
    Survived,
    /// A maintenance session failed — end of the crossbar's life.
    Failed,
    /// The loop aborted with an error.
    Error,
}

impl RunStatus {
    /// Lowercase wire label.
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Running => "running",
            RunStatus::Survived => "survived",
            RunStatus::Failed => "failed",
            RunStatus::Error => "error",
        }
    }
}

/// The aggregated wear picture served over HTTP.
#[derive(Debug, Clone)]
pub struct WearState {
    /// Lifecycle of the run.
    pub status: RunStatus,
    /// Latest lifetime session observed.
    pub session: Option<u64>,
    /// Per-layer wear, keyed by mappable-layer index.
    pub layers: BTreeMap<usize, LayerWear>,
    /// Worst-layer forecast of sessions remaining.
    pub sessions_to_failure: Option<f64>,
    /// Per-tile lifetime forecast, keyed by tile index.
    pub forecast: BTreeMap<usize, TileForecast>,
    /// Worst-tile index of the latest forecast round.
    pub worst_forecast_tile: Option<u64>,
    /// Worst-tile wear velocity, window fraction per session.
    pub worst_velocity_per_session: Option<f64>,
    /// Worst-tile extrapolated sessions to the critical window.
    pub worst_sessions_to_critical: Option<f64>,
    /// Most recent alerts, oldest first (capped at [`MAX_ALERTS`]).
    pub alerts: Vec<AlertRecord>,
}

impl Default for WearState {
    fn default() -> Self {
        WearState {
            status: RunStatus::Running,
            session: None,
            layers: BTreeMap::new(),
            sessions_to_failure: None,
            forecast: BTreeMap::new(),
            worst_forecast_tile: None,
            worst_velocity_per_session: None,
            worst_sessions_to_critical: None,
            alerts: Vec::new(),
        }
    }
}

impl WearState {
    /// The `/wear` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"status\":");
        push_str(&mut out, self.status.label());
        out.push_str(",\"session\":");
        push_opt_u64(&mut out, self.session);
        out.push_str(",\"sessions_to_failure\":");
        push_opt_f64(&mut out, self.sessions_to_failure);
        out.push_str(",\"layers\":[");
        for (i, (layer, wear)) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"layer\":{layer},\"r_max_ohms\":");
            push_f64(&mut out, wear.r_max_ohms);
            out.push_str(",\"r_min_ohms\":");
            push_f64(&mut out, wear.r_min_ohms);
            out.push_str(",\"window_fraction\":");
            push_f64(&mut out, wear.window_fraction);
            out.push_str(",\"shrink_rate_ohms_per_session\":");
            push_f64(&mut out, wear.shrink_rate_ohms_per_session);
            out.push_str(",\"sessions_left\":");
            push_opt_f64(&mut out, wear.sessions_left);
            let _ = write!(
                out,
                ",\"worn_devices\":{},\"pulses\":{}}}",
                wear.worn_devices as u64, wear.pulses as u64
            );
        }
        out.push_str("],\"alerts\":[");
        for (i, alert) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"severity\":\"{}\",\"rule\":", alert.severity);
            push_str(&mut out, &alert.rule);
            out.push_str(",\"session\":");
            push_opt_u64(&mut out, alert.session);
            out.push_str(",\"value\":");
            push_f64(&mut out, alert.value);
            out.push_str(",\"threshold\":");
            push_f64(&mut out, alert.threshold);
            out.push_str(",\"message\":");
            push_str(&mut out, &alert.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The `/health` JSON document (a compact liveness summary).
    pub fn to_health_json(&self) -> String {
        let critical = self.alerts.iter().filter(|a| a.severity == AlertSeverity::Critical).count();
        let mut out = String::from("{\"status\":");
        push_str(&mut out, self.status.label());
        out.push_str(",\"session\":");
        push_opt_u64(&mut out, self.session);
        out.push_str(",\"sessions_to_failure\":");
        push_opt_f64(&mut out, self.sessions_to_failure);
        out.push_str(",\"forecast\":");
        self.push_worst_forecast(&mut out);
        let _ = write!(out, ",\"alerts\":{},\"critical_alerts\":{critical}}}", self.alerts.len());
        out
    }

    /// The `/forecast` JSON document: every tile's fitted wear trajectory
    /// plus the worst-tile summary.
    pub fn to_forecast_json(&self) -> String {
        let mut out = String::from("{\"session\":");
        push_opt_u64(&mut out, self.session);
        out.push_str(",\"tiles\":[");
        for (i, (tile, fit)) in self.forecast.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"tile\":{tile},\"window_fraction\":");
            push_f64(&mut out, fit.window_fraction);
            out.push_str(",\"velocity_per_session\":");
            push_f64(&mut out, fit.velocity_per_session);
            out.push_str(",\"acceleration_per_session2\":");
            push_f64(&mut out, fit.acceleration_per_session2);
            out.push_str(",\"sessions_to_critical\":");
            push_opt_f64(&mut out, fit.sessions_to_critical);
            out.push('}');
        }
        out.push_str("],\"worst\":");
        self.push_worst_forecast(&mut out);
        out.push('}');
        out
    }

    /// Appends the worst-tile forecast object (or `null` before the first
    /// forecast round) shared by `/health` and `/forecast`.
    fn push_worst_forecast(&self, out: &mut String) {
        match self.worst_forecast_tile {
            Some(tile) => {
                let _ = write!(out, "{{\"tile\":{tile},\"velocity_per_session\":");
                push_opt_f64(out, self.worst_velocity_per_session);
                out.push_str(",\"sessions_to_critical\":");
                push_opt_f64(out, self.worst_sessions_to_critical);
                out.push('}');
            }
            None => out.push_str("null"),
        }
    }
}

/// A cloneable view onto the shared [`WearState`], independent of the sink
/// that feeds it (the sink is consumed by [`memaging_obs::Recorder::new`];
/// the handle outlives it — the same split as `MemorySink`/`MemoryHandle`).
#[derive(Clone)]
pub struct WearHandle {
    wear: Arc<Mutex<WearState>>,
}

impl WearHandle {
    /// A copy of the current wear picture.
    pub fn snapshot(&self) -> WearState {
        self.wear.lock().expect("wear state poisoned").clone()
    }

    /// Records the run's terminal status (shown on `/health` and `/wear`).
    pub fn set_status(&self, status: RunStatus) {
        self.wear.lock().expect("wear state poisoned").status = status;
    }
}

/// Everything the HTTP tier needs: the recorder (for `/metrics`) and the
/// wear state (for `/wear` and `/health`). Cheap to clone.
#[derive(Clone)]
pub struct MonitorState {
    /// Recorder whose registry backs `/metrics`.
    pub recorder: Recorder,
    wear: WearHandle,
}

impl MonitorState {
    /// Combines the recorder (which should have the [`MonitorSink`] paired
    /// with `wear` among its sinks) with the wear view.
    pub fn new(recorder: Recorder, wear: WearHandle) -> Self {
        MonitorState { recorder, wear }
    }

    /// A copy of the current wear picture.
    pub fn wear(&self) -> WearState {
        self.wear.snapshot()
    }

    /// Records the run's terminal status (shown on `/health` and `/wear`).
    pub fn set_status(&self, status: RunStatus) {
        self.wear.set_status(status);
    }
}

/// An [`memaging_obs::Sink`] that folds recorder events into the shared
/// [`WearState`].
pub struct MonitorSink {
    wear: Arc<Mutex<WearState>>,
}

impl MonitorSink {
    /// The sink plus the [`WearHandle`] that keeps reading the state after
    /// the sink moves into a recorder.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (MonitorSink, WearHandle) {
        let wear = Arc::new(Mutex::new(WearState::default()));
        (MonitorSink { wear: Arc::clone(&wear) }, WearHandle { wear })
    }
}

impl Sink for MonitorSink {
    fn record(&mut self, event: &Event) {
        let mut wear = self.wear.lock().expect("wear state poisoned");
        match event {
            Event::Gauge { name, session, value } => {
                if session.is_some() {
                    wear.session = wear.session.max(*session);
                }
                match name.as_str() {
                    "health.sessions_to_failure" => {
                        wear.sessions_to_failure = Some(*value);
                        return;
                    }
                    // The worst-tile gauges arrive as a burst led by
                    // `worst_tile`; clearing the crossing on arrival keeps a
                    // never-crossing round from inheriting the stale
                    // `sessions_to_critical` of an earlier one (the engine
                    // skips that gauge when the trajectory never crosses).
                    "forecast.worst_tile" => {
                        wear.worst_forecast_tile = Some(*value as u64);
                        wear.worst_sessions_to_critical = None;
                        return;
                    }
                    "forecast.worst_velocity_per_session" => {
                        wear.worst_velocity_per_session = Some(*value);
                        return;
                    }
                    "forecast.worst_sessions_to_critical" => {
                        wear.worst_sessions_to_critical = Some(*value);
                        return;
                    }
                    _ => {}
                }
                if let Some((base, tile)) = parse_label(name, "tile") {
                    if base.starts_with("forecast.") {
                        let entry = wear.forecast.entry(tile).or_default();
                        match base {
                            // Leads each per-tile burst; same stale-crossing
                            // reset as the worst-tile gauges above.
                            "forecast.window_fraction" => {
                                entry.window_fraction = *value;
                                entry.sessions_to_critical = None;
                            }
                            "forecast.velocity_per_session" => {
                                entry.velocity_per_session = *value;
                            }
                            "forecast.acceleration_per_session2" => {
                                entry.acceleration_per_session2 = *value;
                            }
                            "forecast.sessions_to_critical" => {
                                entry.sessions_to_critical = Some(*value);
                            }
                            _ => {}
                        }
                    }
                    return;
                }
                let Some((base, layer)) = parse_label(name, "layer") else { return };
                let entry = wear.layers.entry(layer).or_default();
                match base {
                    "aging.r_max_ohms" => entry.r_max_ohms = *value,
                    "aging.r_min_ohms" => entry.r_min_ohms = *value,
                    "health.window_fraction" => entry.window_fraction = *value,
                    "health.shrink_rate_ohms_per_session" => {
                        entry.shrink_rate_ohms_per_session = *value;
                    }
                    "health.sessions_left" => entry.sessions_left = Some(*value),
                    "wear.worn_devices" => entry.worn_devices = *value,
                    "wear.pulses" => entry.pulses = *value,
                    _ => {}
                }
            }
            Event::Session { index, .. } => {
                wear.session = wear.session.max(Some(*index));
            }
            Event::Alert { severity, name, session, value, threshold, message } => {
                if wear.alerts.len() == MAX_ALERTS {
                    wear.alerts.remove(0);
                }
                wear.alerts.push(AlertRecord {
                    severity: *severity,
                    rule: name.clone(),
                    session: *session,
                    value: *value,
                    threshold: *threshold,
                    message: message.clone(),
                });
            }
            _ => {}
        }
    }
}

/// Splits `base{key=N}` into `(base, N)` for the given label key.
fn parse_label<'a>(name: &'a str, key: &str) -> Option<(&'a str, usize)> {
    let (base, rest) = name.split_once('{')?;
    let index = rest.strip_suffix('}')?.strip_prefix(key)?.strip_prefix('=')?.parse().ok()?;
    Some((base, index))
}

/// Appends a JSON string literal (RFC 8259 escaping).
fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number (`null` for non-finite values).
fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        if value == value.trunc() && value.abs() < 1e15 {
            let _ = write!(out, "{value:.1}");
        } else {
            let _ = write!(out, "{value}");
        }
    } else {
        out.push_str("null");
    }
}

fn push_opt_f64(out: &mut String, value: Option<f64>) {
    match value {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_opt_u64(out: &mut String, value: Option<u64>) {
    match value {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &mut MonitorSink, events: &[Event]) {
        for e in events {
            sink.record(e);
        }
    }

    #[test]
    fn sink_folds_gauges_into_per_layer_wear() {
        let (mut sink, handle) = MonitorSink::new();
        feed(
            &mut sink,
            &[
                Event::Gauge {
                    name: "aging.r_max_ohms{layer=0}".into(),
                    session: Some(2),
                    value: 91_000.0,
                },
                Event::Gauge {
                    name: "aging.r_min_ohms{layer=0}".into(),
                    session: Some(2),
                    value: 10_400.0,
                },
                Event::Gauge {
                    name: "health.window_fraction{layer=0}".into(),
                    session: Some(2),
                    value: 0.81,
                },
                Event::Gauge {
                    name: "health.sessions_left{layer=1}".into(),
                    session: Some(2),
                    value: 14.5,
                },
                Event::Gauge {
                    name: "health.sessions_to_failure".into(),
                    session: Some(2),
                    value: 14.5,
                },
                Event::Gauge { name: "unrelated.gauge".into(), session: None, value: 1.0 },
            ],
        );
        let wear = handle.snapshot();
        assert_eq!(wear.session, Some(2));
        assert_eq!(wear.layers.len(), 2);
        assert_eq!(wear.layers[&0].r_max_ohms, 91_000.0);
        assert_eq!(wear.layers[&0].r_min_ohms, 10_400.0);
        assert_eq!(wear.layers[&0].window_fraction, 0.81);
        assert_eq!(wear.layers[&1].sessions_left, Some(14.5));
        assert_eq!(wear.sessions_to_failure, Some(14.5));
    }

    #[test]
    fn sink_retains_alerts_with_a_cap() {
        let (mut sink, handle) = MonitorSink::new();
        for i in 0..(MAX_ALERTS + 3) {
            sink.record(&Event::Alert {
                severity: AlertSeverity::Warn,
                name: "health.window_fraction".into(),
                session: Some(i as u64),
                value: 0.4,
                threshold: 0.5,
                message: format!("alert {i}"),
            });
        }
        let wear = handle.snapshot();
        assert_eq!(wear.alerts.len(), MAX_ALERTS);
        assert_eq!(wear.alerts.first().unwrap().session, Some(3));
        assert_eq!(wear.alerts.last().unwrap().session, Some((MAX_ALERTS + 2) as u64));
    }

    #[test]
    fn wear_json_is_well_formed() {
        let (mut sink, handle) = MonitorSink::new();
        let state = MonitorState::new(Recorder::disabled(), handle);
        feed(
            &mut sink,
            &[
                Event::Gauge {
                    name: "aging.r_max_ohms{layer=0}".into(),
                    session: Some(1),
                    value: 91_000.0,
                },
                Event::Alert {
                    severity: AlertSeverity::Critical,
                    name: "health.sessions_left".into(),
                    session: Some(1),
                    value: 2.0,
                    threshold: 3.0,
                    message: "forecast: 2 \"sessions\" left".into(),
                },
            ],
        );
        let json = state.wear().to_json();
        assert!(json.starts_with("{\"status\":\"running\",\"session\":1,"));
        assert!(json.contains("\"layers\":[{\"layer\":0,\"r_max_ohms\":91000.0,"));
        assert!(json.contains("\"severity\":\"critical\""));
        assert!(json.contains("forecast: 2 \\\"sessions\\\" left"));
        state.set_status(RunStatus::Failed);
        let health = state.wear().to_health_json();
        assert!(health.contains("\"status\":\"failed\""));
        assert!(health.contains("\"critical_alerts\":1"));
    }

    #[test]
    fn sink_folds_forecast_gauges_into_tile_trajectories() {
        let (mut sink, handle) = MonitorSink::new();
        feed(
            &mut sink,
            &[
                Event::Gauge {
                    name: "forecast.window_fraction{tile=3}".into(),
                    session: None,
                    value: 0.5,
                },
                Event::Gauge {
                    name: "forecast.velocity_per_session{tile=3}".into(),
                    session: None,
                    value: -0.00625,
                },
                Event::Gauge {
                    name: "forecast.acceleration_per_session2{tile=3}".into(),
                    session: None,
                    value: -0.001,
                },
                Event::Gauge {
                    name: "forecast.sessions_to_critical{tile=3}".into(),
                    session: None,
                    value: 32.0,
                },
                Event::Gauge { name: "forecast.worst_tile".into(), session: None, value: 3.0 },
                Event::Gauge {
                    name: "forecast.worst_velocity_per_session".into(),
                    session: None,
                    value: -0.00625,
                },
                Event::Gauge {
                    name: "forecast.worst_sessions_to_critical".into(),
                    session: None,
                    value: 32.0,
                },
            ],
        );
        let wear = handle.snapshot();
        assert_eq!(wear.forecast.len(), 1);
        assert_eq!(wear.forecast[&3].window_fraction, 0.5);
        assert_eq!(wear.forecast[&3].velocity_per_session, -0.00625);
        assert_eq!(wear.forecast[&3].sessions_to_critical, Some(32.0));
        assert_eq!(wear.worst_forecast_tile, Some(3));
        assert_eq!(wear.worst_sessions_to_critical, Some(32.0));
        // Forecast gauges never create layer entries.
        assert!(wear.layers.is_empty());

        let forecast = wear.to_forecast_json();
        assert_eq!(
            forecast,
            "{\"session\":null,\"tiles\":[{\"tile\":3,\"window_fraction\":0.5,\
             \"velocity_per_session\":-0.00625,\"acceleration_per_session2\":-0.001,\
             \"sessions_to_critical\":32.0}],\"worst\":{\"tile\":3,\
             \"velocity_per_session\":-0.00625,\"sessions_to_critical\":32.0}}"
        );
        let health = wear.to_health_json();
        assert!(
            health.contains(
                "\"forecast\":{\"tile\":3,\"velocity_per_session\":-0.00625,\
                 \"sessions_to_critical\":32.0}"
            ),
            "got: {health}"
        );
    }

    #[test]
    fn a_non_crossing_round_clears_the_stale_crossing() {
        let (mut sink, handle) = MonitorSink::new();
        feed(
            &mut sink,
            &[
                Event::Gauge {
                    name: "forecast.window_fraction{tile=0}".into(),
                    session: None,
                    value: 0.5,
                },
                Event::Gauge {
                    name: "forecast.sessions_to_critical{tile=0}".into(),
                    session: None,
                    value: 10.0,
                },
                Event::Gauge { name: "forecast.worst_tile".into(), session: None, value: 0.0 },
                Event::Gauge {
                    name: "forecast.worst_sessions_to_critical".into(),
                    session: None,
                    value: 10.0,
                },
                // Next round: the trajectory flattened, so the engine emits
                // no sessions_to_critical gauges at all.
                Event::Gauge {
                    name: "forecast.window_fraction{tile=0}".into(),
                    session: None,
                    value: 0.5,
                },
                Event::Gauge { name: "forecast.worst_tile".into(), session: None, value: 0.0 },
            ],
        );
        let wear = handle.snapshot();
        assert_eq!(wear.forecast[&0].sessions_to_critical, None);
        assert_eq!(wear.worst_sessions_to_critical, None);
        assert!(wear.to_forecast_json().contains("\"sessions_to_critical\":null"));
    }

    #[test]
    fn empty_state_serializes_with_nulls() {
        let (_sink, handle) = MonitorSink::new();
        let json = handle.snapshot().to_json();
        assert_eq!(
            json,
            "{\"status\":\"running\",\"session\":null,\"sessions_to_failure\":null,\
             \"layers\":[],\"alerts\":[]}"
        );
    }
}
