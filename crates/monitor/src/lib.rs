//! # memaging-monitor
//!
//! The scrapeable monitoring tier over [`memaging-obs`](memaging_obs): turns
//! a live [`Recorder`](memaging_obs::Recorder) into an HTTP endpoint a
//! Prometheus scraper (or a plain `curl`) can watch while the lifetime
//! pipeline runs. Dependency-free, like the recorder beneath it: the server
//! is a [`std::net::TcpListener`] accept loop, the exposition and JSON are
//! hand-rolled.
//!
//! The pieces:
//!
//! * [`prometheus::render`]: text-format exposition (version 0.0.4) of a
//!   sorted [`MetricsSnapshot`](memaging_obs::MetricsSnapshot) — counters as
//!   `_total`, internal `name{layer=0}` labels as `name{layer="0"}`,
//!   histograms as cumulative `_bucket{le=...}` series;
//! * [`MonitorSink`]: an [`memaging_obs::Sink`] folding the wear-health
//!   gauges and alerts of `memaging-lifetime` into a shared [`WearState`];
//! * [`MonitorServer`]: the HTTP server routing `GET /metrics` (exposition),
//!   `GET /health` (liveness JSON with the worst-tile lifetime forecast,
//!   `503` after a failed run), `GET /wear` (per-tile wear heatmap JSON),
//!   `GET /forecast` (per-tile wear velocity/acceleration trajectories
//!   folded from the serve engine's `forecast.*` gauges) and `GET
//!   /timeseries` (the recorder's deterministic [`memaging_obs::SeriesStore`]
//!   dump, `404` when no store is attached).
//!
//! # Example
//!
//! ```
//! use memaging_monitor::{MonitorServer, MonitorSink, MonitorState};
//! use memaging_obs::Recorder;
//!
//! # fn main() -> std::io::Result<()> {
//! let (sink, wear) = MonitorSink::new();
//! let recorder = Recorder::new(vec![Box::new(sink)]);
//! let server =
//!     MonitorServer::bind("127.0.0.1:0", MonitorState::new(recorder.clone(), wear))?;
//! println!("scrape http://{}/metrics", server.local_addr());
//! // ... run the pipeline with `recorder`, then:
//! server.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! The `memaging serve <scenario>` subcommand wires this up end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod prometheus;
mod server;
mod state;

pub use server::{HttpHandler, HttpRequest, HttpResponse, MonitorServer};
pub use state::{
    AlertRecord, LayerWear, MonitorSink, MonitorState, RunStatus, TileForecast, WearHandle,
    WearState,
};
