//! The monitoring/serving HTTP endpoint: a minimal HTTP/1.1 server on
//! [`std::net::TcpListener`] — dependency-free, like everything in the
//! observability stack.
//!
//! Built-in routes:
//!
//! * `GET /metrics` — Prometheus text exposition of the recorder's registry;
//! * `GET /health`  — compact JSON liveness summary (`503` once the
//!   monitored run has failed — scrapers and load balancers alike read it);
//! * `GET /wear`    — the per-tile wear heatmap JSON of
//!   [`crate::WearState::to_json`];
//! * `GET /forecast` — per-tile lifetime trajectories (wear velocity,
//!   acceleration, sessions-to-critical) folded from the serve engine's
//!   `forecast.*` gauges ([`crate::WearState::to_forecast_json`]);
//! * `GET /timeseries` — the recorder's deterministic wear time-series
//!   store ([`memaging_obs::SeriesStore::to_json`]), `404` when no store
//!   is attached.
//!
//! Additional routes (the serving tier's `POST /infer` and
//! `GET /serve/stats`) plug in through [`HttpHandler`]: handlers are
//! consulted in registration order before the built-ins, each sees the full
//! parsed [`HttpRequest`] (method, path, body), and the first to return a
//! response wins.
//!
//! Each accepted connection is served on its own short-lived thread, so a
//! long-running `POST /infer` cannot starve `/metrics` scrapes. The accept
//! loop tracks those threads and [`MonitorServer::shutdown`] joins the
//! accept thread *and* drains every in-flight connection before returning —
//! a request accepted before shutdown always receives its response.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::prometheus;
use crate::state::{MonitorState, RunStatus};

/// Per-connection socket timeout: a stalled client cannot hold a
/// connection thread for longer than this per read/write.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Maximum accepted request body, bytes. Inference payloads are a few KiB;
/// anything near this is a misbehaving client.
const MAX_BODY: usize = 1 << 20;

/// One parsed HTTP request as seen by an [`HttpHandler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// Raw request body (empty for bodyless requests).
    pub body: Vec<u8>,
}

/// The response an [`HttpHandler`] produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        HttpResponse { status, content_type: "application/json", body: body.into() }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        HttpResponse { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }
}

/// A pluggable route handler consulted before the built-in monitor routes.
///
/// Return `None` to decline the request (the next handler, then the
/// built-ins, get their turn); return `Some` to answer it. Handlers run on
/// the per-connection thread and may block for the duration of the work
/// they represent (the serving tier blocks `POST /infer` until the batch
/// that carries the request completes).
pub trait HttpHandler: Send + Sync {
    /// Answers `request`, or declines it with `None`.
    fn handle(&self, request: &HttpRequest) -> Option<HttpResponse>;
}

/// The monitoring HTTP server. Shuts down when dropped (or explicitly via
/// [`MonitorServer::shutdown`]).
pub struct MonitorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    /// In-flight connection threads, shared with the accept loop; drained
    /// on shutdown.
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl MonitorServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// starts serving `state` on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, permission, bad address).
    pub fn bind(addr: impl ToSocketAddrs, state: MonitorState) -> io::Result<MonitorServer> {
        MonitorServer::bind_with_handlers(addr, state, Vec::new())
    }

    /// Like [`MonitorServer::bind`], with extra [`HttpHandler`] routes
    /// consulted (in order) before the built-in monitor endpoints.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, permission, bad address).
    pub fn bind_with_handlers(
        addr: impl ToSocketAddrs,
        state: MonitorState,
        handlers: Vec<Arc<dyn HttpHandler>>,
    ) -> io::Result<MonitorServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_connections = Arc::clone(&connections);
        let handle =
            std::thread::Builder::new().name("memaging-monitor".into()).spawn(move || {
                accept_loop(&listener, &state, &handlers, &thread_stop, &thread_connections)
            })?;
        Ok(MonitorServer { addr, stop, handle: Some(handle), connections })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, joins the accept thread, and drains every
    /// in-flight connection: requests already accepted still get their
    /// response before this returns.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        // The accept thread is gone; whatever connections it spawned are
        // all in the vec. Join them so in-flight requests finish cleanly.
        let drained = match self.connections.lock() {
            Ok(mut conns) => std::mem::take(&mut *conns),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for conn in drained {
            let _ = conn.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &MonitorState,
    handlers: &[Arc<dyn HttpHandler>],
    stop: &AtomicBool,
    connections: &Mutex<Vec<JoinHandle<()>>>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        let handlers: Vec<Arc<dyn HttpHandler>> = handlers.to_vec();
        // Best-effort per connection: a broken request must not kill the
        // server.
        let conn =
            std::thread::Builder::new().name("memaging-monitor-conn".into()).spawn(move || {
                let _ = handle_connection(stream, &state, &handlers);
            });
        let Ok(conn) = conn else { continue };
        let Ok(mut conns) = connections.lock() else { continue };
        // Reap finished threads as we go so the vec tracks only live
        // connections (plus a few just-finished stragglers).
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let _ = conns.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        conns.push(conn);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    state: &MonitorState,
    handlers: &[Arc<dyn HttpHandler>],
) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let Some(request) = read_request(&mut stream)? else {
        return respond(&mut stream, 400, "text/plain; charset=utf-8", "bad request\n");
    };
    for handler in handlers {
        if let Some(response) = handler.handle(&request) {
            return respond(&mut stream, response.status, response.content_type, &response.body);
        }
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => {
            let snapshot = state.recorder.snapshot().unwrap_or_default();
            respond(&mut stream, 200, prometheus::CONTENT_TYPE, &prometheus::render(&snapshot))
        }
        ("GET", "/health") => {
            let wear = state.wear();
            let status = if wear.status == RunStatus::Failed { 503 } else { 200 };
            respond(&mut stream, status, "application/json", &wear.to_health_json())
        }
        ("GET", "/wear") => respond(&mut stream, 200, "application/json", &state.wear().to_json()),
        ("GET", "/forecast") => {
            respond(&mut stream, 200, "application/json", &state.wear().to_forecast_json())
        }
        ("GET", "/timeseries") => match state.recorder.series() {
            Some(store) => respond(&mut stream, 200, "application/json", &store.to_json()),
            None => respond(
                &mut stream,
                404,
                "application/json",
                "{\"error\":\"no series store attached\"}",
            ),
        },
        ("GET", _) => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
        _ => respond(&mut stream, 405, "text/plain; charset=utf-8", "method not allowed\n"),
    }
}

/// Reads and parses one request: head (request line + headers), then as
/// many body bytes as `Content-Length` announces. Returns `None` for
/// anything unparsable (the caller answers 400).
fn read_request(stream: &mut TcpStream) -> io::Result<Option<HttpRequest>> {
    // 8 KiB is plenty for a request head; anything longer is cut off and
    // will fail to parse.
    let mut buf = vec![0u8; 8192];
    let mut len = 0;
    let mut head_end = None;
    while len < buf.len() {
        let n = match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        len += n;
        if let Some(pos) = buf[..len].windows(4).position(|w| w == b"\r\n\r\n") {
            head_end = Some(pos + 4);
            break;
        }
    }
    let Some(head_end) = head_end else { return Ok(None) };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(raw_path)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Ok(None);
    }
    let path = raw_path.split('?').next().unwrap_or(raw_path).to_string();
    let content_length = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, value)| value.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Ok(None);
    }
    let mut body = buf[head_end..len].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        let want = (content_length - body.len()).min(chunk.len());
        let n = match stream.read(&mut chunk[..want]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        body.extend_from_slice(&chunk[..n]);
    }
    if body.len() < content_length {
        return Ok(None); // Client hung up / timed out mid-body.
    }
    body.truncate(content_length);
    Ok(Some(HttpRequest { method: method.to_string(), path, body }))
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memaging_obs::Recorder;

    /// Minimal test-side HTTP GET; returns (status, body).
    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 =
            response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    /// Minimal test-side HTTP POST; returns (status, body).
    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 =
            response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn serving_state() -> (MonitorState, Recorder) {
        let (sink, wear) = crate::MonitorSink::new();
        // A recorder that feeds the monitor sink *and* owns a registry.
        let recorder = Recorder::new(vec![Box::new(sink)]);
        (MonitorState::new(recorder.clone(), wear), recorder)
    }

    #[test]
    fn serves_metrics_health_wear_and_404() {
        let (state, recorder) = serving_state();
        recorder.counter("tuner.iterations", 42);
        recorder.gauge_labeled("aging.r_max_ohms", "layer", 0usize, 91_000.0);
        let server = MonitorServer::bind("127.0.0.1:0", state.clone()).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("tuner_iterations_total 42\n"), "got: {body}");
        assert!(body.contains("aging_r_max_ohms{layer=\"0\"} 91000\n"));

        let (status, body) = get(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"running\""));

        let (status, body) = get(addr, "/wear");
        assert_eq!(status, 200);
        assert!(body.contains("\"layers\":[{\"layer\":0,\"r_max_ohms\":91000.0,"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn serves_forecast_and_timeseries() {
        use memaging_obs::SeriesStore;

        let (sink, wear) = crate::MonitorSink::new();
        let series = Arc::new(SeriesStore::with_capacity(8));
        let recorder = Recorder::with_series(vec![Box::new(sink)], Arc::clone(&series));
        let state = MonitorState::new(recorder.clone(), wear);
        let server = MonitorServer::bind("127.0.0.1:0", state).unwrap();
        let addr = server.local_addr();

        recorder.series_record("serve.window_fraction_ppb{tile=0}", 1, 900_000_000);
        recorder.gauge_labeled("forecast.window_fraction", "tile", 0usize, 0.9);
        recorder.gauge("forecast.worst_tile", 0.0);
        recorder.gauge("forecast.worst_velocity_per_session", -0.05);

        let (status, body) = get(addr, "/timeseries");
        assert_eq!(status, 200);
        assert!(body.contains("\"serve.window_fraction_ppb{tile=0}\""), "got: {body}");
        assert!(body.contains("\"seq\":1"), "got: {body}");

        let (status, body) = get(addr, "/forecast");
        assert_eq!(status, 200);
        assert!(body.contains("\"tiles\":[{\"tile\":0,\"window_fraction\":0.9,"), "got: {body}");
        assert!(body.contains("\"worst\":{\"tile\":0,"), "got: {body}");

        // The worst-tile forecast is folded into /health too.
        let (status, body) = get(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"forecast\":{\"tile\":0,"), "got: {body}");
        server.shutdown();
    }

    #[test]
    fn timeseries_is_404_without_a_store() {
        let (state, _recorder) = serving_state();
        let server = MonitorServer::bind("127.0.0.1:0", state).unwrap();
        let (status, body) = get(server.local_addr(), "/timeseries");
        assert_eq!(status, 404);
        assert_eq!(body, "{\"error\":\"no series store attached\"}");
        server.shutdown();
    }

    #[test]
    fn health_goes_503_when_the_run_fails() {
        let (state, _recorder) = serving_state();
        let server = MonitorServer::bind("127.0.0.1:0", state.clone()).unwrap();
        state.set_status(RunStatus::Failed);
        let (status, body) = get(server.local_addr(), "/health");
        assert_eq!(status, 503);
        assert!(body.contains("\"status\":\"failed\""));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_and_do_not_kill_the_server() {
        let (state, _recorder) = serving_state();
        let server = MonitorServer::bind("127.0.0.1:0", state).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"bogus\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400 "), "got: {response}");
        // Server still answers afterwards.
        let (status, _) = get(addr, "/health");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn post_to_builtin_routes_is_405() {
        let (state, _recorder) = serving_state();
        let server = MonitorServer::bind("127.0.0.1:0", state).unwrap();
        let (status, _) = post(server.local_addr(), "/metrics", "{}");
        assert_eq!(status, 405);
        server.shutdown();
    }

    /// Echo handler: answers `POST /echo` with the request body.
    struct Echo;
    impl HttpHandler for Echo {
        fn handle(&self, request: &HttpRequest) -> Option<HttpResponse> {
            (request.method == "POST" && request.path == "/echo").then(|| {
                HttpResponse::text(200, String::from_utf8_lossy(&request.body).into_owned())
            })
        }
    }

    #[test]
    fn custom_handlers_see_method_path_and_body() {
        let (state, _recorder) = serving_state();
        let server =
            MonitorServer::bind_with_handlers("127.0.0.1:0", state, vec![Arc::new(Echo)]).unwrap();
        let addr = server.local_addr();
        let payload = "x".repeat(20_000); // Forces the body-continuation read path.
        let (status, body) = post(addr, "/echo", &payload);
        assert_eq!(status, 200);
        assert_eq!(body, payload);
        // Built-ins still answer behind the handler.
        let (status, _) = get(addr, "/health");
        assert_eq!(status, 200);
        server.shutdown();
    }

    /// Slow handler used by the shutdown-under-load regression test: parks
    /// each request long enough that shutdown provably overlaps in-flight
    /// work, then answers. `entered` counts requests inside the handler so
    /// the test can start shutdown only once all of them are in flight.
    struct Slow {
        entered: Arc<std::sync::atomic::AtomicUsize>,
    }
    impl HttpHandler for Slow {
        fn handle(&self, request: &HttpRequest) -> Option<HttpResponse> {
            (request.path == "/slow").then(|| {
                self.entered.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(300));
                HttpResponse::text(200, "slept\n")
            })
        }
    }

    #[test]
    fn shutdown_drains_in_flight_connections() {
        let (state, _recorder) = serving_state();
        let entered = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let slow = Slow { entered: Arc::clone(&entered) };
        let server =
            MonitorServer::bind_with_handlers("127.0.0.1:0", state, vec![Arc::new(slow)]).unwrap();
        let addr = server.local_addr();

        // Launch a wave of slow requests and wait until every one is
        // provably inside its handler, then shut the server down under
        // that load.
        let clients: Vec<_> =
            (0..4).map(|_| std::thread::spawn(move || get(addr, "/slow"))).collect();
        let waiting = std::time::Instant::now();
        while entered.load(Ordering::SeqCst) < 4 {
            assert!(waiting.elapsed() < Duration::from_secs(10), "requests never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        let shutdown_started = std::time::Instant::now();
        server.shutdown();
        assert!(
            shutdown_started.elapsed() <= Duration::from_secs(5),
            "shutdown must not hang on in-flight connections"
        );
        // Every accepted request got its full response despite the
        // concurrent shutdown.
        for client in clients {
            let (status, body) = client.join().unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, "slept\n");
        }
    }
}
