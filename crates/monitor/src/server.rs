//! The scrape endpoint: a minimal HTTP/1.1 server on
//! [`std::net::TcpListener`] — dependency-free, like everything in the
//! observability stack.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition of the recorder's registry;
//! * `GET /health`  — compact JSON liveness summary (`503` once the
//!   monitored run has failed — scrapers and load balancers alike read it);
//! * `GET /wear`    — the per-tile wear heatmap JSON of
//!   [`crate::WearState::to_json`].
//!
//! The accept loop runs on one background thread and handles connections
//! serially: scrapes are tiny, the responses are built from cheap snapshots,
//! and a serial loop cannot be wedged open by a slow client thanks to the
//! per-connection read timeout.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::prometheus;
use crate::state::{MonitorState, RunStatus};

/// Per-connection socket timeout: a stalled scraper cannot block the loop
/// for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The monitoring HTTP server. Shuts down when dropped (or explicitly via
/// [`MonitorServer::shutdown`]).
pub struct MonitorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MonitorServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// starts serving `state` on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, permission, bad address).
    pub fn bind(addr: impl ToSocketAddrs, state: MonitorState) -> io::Result<MonitorServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("memaging-monitor".into())
            .spawn(move || accept_loop(&listener, &state, &thread_stop))?;
        Ok(MonitorServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &MonitorState, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Best-effort per connection: a broken scrape must not kill the
        // server.
        let _ = handle_connection(stream, state);
    }
}

fn handle_connection(mut stream: TcpStream, state: &MonitorState) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let Some(path) = read_request_path(&mut stream)? else {
        return respond(&mut stream, 400, "text/plain; charset=utf-8", "bad request\n");
    };
    match path.as_str() {
        "/metrics" => {
            let snapshot = state.recorder.snapshot().unwrap_or_default();
            respond(&mut stream, 200, prometheus::CONTENT_TYPE, &prometheus::render(&snapshot))
        }
        "/health" => {
            let wear = state.wear();
            let status = if wear.status == RunStatus::Failed { 503 } else { 200 };
            respond(&mut stream, status, "application/json", &wear.to_health_json())
        }
        "/wear" => respond(&mut stream, 200, "application/json", &state.wear().to_json()),
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads the request head and returns the path of a `GET` request (`None`
/// for anything unparsable or non-GET — the caller answers 400).
fn read_request_path(stream: &mut TcpStream) -> io::Result<Option<String>> {
    // 8 KiB is plenty for a scrape request head; anything longer is cut off
    // and will fail to parse.
    let mut buf = [0u8; 8192];
    let mut len = 0;
    while len < buf.len() {
        let n = match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.split('?').next().unwrap_or(path).to_string())),
        _ => Ok(None),
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memaging_obs::Recorder;

    /// Minimal test-side HTTP GET; returns (status, body).
    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 =
            response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn serving_state() -> (MonitorState, Recorder) {
        let (sink, wear) = crate::MonitorSink::new();
        // A recorder that feeds the monitor sink *and* owns a registry.
        let recorder = Recorder::new(vec![Box::new(sink)]);
        (MonitorState::new(recorder.clone(), wear), recorder)
    }

    #[test]
    fn serves_metrics_health_wear_and_404() {
        let (state, recorder) = serving_state();
        recorder.counter("tuner.iterations", 42);
        recorder.gauge_labeled("aging.r_max_ohms", "layer", 0usize, 91_000.0);
        let server = MonitorServer::bind("127.0.0.1:0", state.clone()).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("tuner_iterations_total 42\n"), "got: {body}");
        assert!(body.contains("aging_r_max_ohms{layer=\"0\"} 91000\n"));

        let (status, body) = get(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"running\""));

        let (status, body) = get(addr, "/wear");
        assert_eq!(status, 200);
        assert!(body.contains("\"layers\":[{\"layer\":0,\"r_max_ohms\":91000.0,"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn health_goes_503_when_the_run_fails() {
        let (state, _recorder) = serving_state();
        let server = MonitorServer::bind("127.0.0.1:0", state.clone()).unwrap();
        state.set_status(RunStatus::Failed);
        let (status, body) = get(server.local_addr(), "/health");
        assert_eq!(status, 503);
        assert!(body.contains("\"status\":\"failed\""));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_and_do_not_kill_the_server() {
        let (state, _recorder) = serving_state();
        let server = MonitorServer::bind("127.0.0.1:0", state).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400 "), "got: {response}");
        // Server still answers afterwards.
        let (status, _) = get(addr, "/health");
        assert_eq!(status, 200);
        server.shutdown();
    }
}
