//! Prometheus text-format exposition (version 0.0.4) over a
//! [`MetricsSnapshot`].
//!
//! The renderer is the *only* consumer-facing serialization of the metrics
//! registry besides the pretty `--metrics` table, and both read the same
//! sorted [`memaging_obs::Registry::snapshot`] — so scrapes are
//! deterministic: the same registry state always renders to byte-identical
//! exposition text, regardless of metric insertion order.
//!
//! Internal metric names use dots and an inline label suffix
//! (`aging.r_max_ohms{layer=0}`); the exposition sanitizes names to
//! `[a-zA-Z_][a-zA-Z0-9_]*`, quotes label values, suffixes counters with
//! `_total`, and expands histograms into cumulative `_bucket{le="..."}`
//! series plus `_sum`/`_count` as the format requires.

use std::fmt::Write as _;

use memaging_obs::{HistogramSnapshot, MetricsSnapshot};

/// The `Content-Type` a scrape endpoint must declare for this exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Renders the snapshot as Prometheus text exposition: counters first, then
/// gauges, then histograms, each alphabetically (the snapshot's order), with
/// one `# TYPE` line per metric family.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, total) in &snapshot.counters {
        let (family, labels) = split_name(name);
        let family = format!("{}_total", sanitize(&family));
        type_line(&mut out, &mut last_family, &family, "counter");
        let _ = writeln!(out, "{family}{labels} {total}");
    }
    for (name, value) in &snapshot.gauges {
        let (family, labels) = split_name(name);
        let family = sanitize(&family);
        type_line(&mut out, &mut last_family, &family, "gauge");
        let _ = writeln!(out, "{family}{labels} {}", number(*value));
    }
    for (name, histogram) in &snapshot.histograms {
        let (family, labels) = split_name(name);
        render_histogram(&mut out, &mut last_family, &sanitize(&family), &labels, histogram);
    }
    out
}

/// Cumulative `_bucket` series + `_sum` + `_count` for one histogram.
fn render_histogram(
    out: &mut String,
    last_family: &mut String,
    family: &str,
    labels: &str,
    histogram: &HistogramSnapshot,
) {
    type_line(out, last_family, family, "histogram");
    // `labels` arrives rendered (`{k="v"}` or empty); `le` must join any
    // existing label set rather than open a second brace block.
    let with_le = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
        }
    };
    let mut cumulative = 0u64;
    for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
        cumulative += count;
        let _ = writeln!(out, "{family}_bucket{} {cumulative}", with_le(&number(*bound)));
    }
    let _ = writeln!(out, "{family}_bucket{} {}", with_le("+Inf"), histogram.count);
    let _ = writeln!(out, "{family}_sum {}", number(histogram.sum));
    let _ = writeln!(out, "{family}_count {}", histogram.count);
}

/// Emits the `# TYPE` header when entering a new metric family.
fn type_line(out: &mut String, last_family: &mut String, family: &str, kind: &str) {
    if family != last_family {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        family.clone_into(last_family);
    }
}

/// Splits an internal `base{key=value,...}` name into the base and a
/// rendered exposition label set (`{key="value",...}` or empty).
fn split_name(name: &str) -> (String, String) {
    let Some((base, rest)) = name.split_once('{') else {
        return (name.to_string(), String::new());
    };
    let Some(inner) = rest.strip_suffix('}') else {
        // Malformed label suffix: treat the whole thing as a bare name.
        return (name.to_string(), String::new());
    };
    let mut labels = String::from("{");
    for (i, pair) in inner.split(',').enumerate() {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if i > 0 {
            labels.push(',');
        }
        let _ = write!(labels, "{}=\"{}\"", sanitize(key), escape_label(value));
    }
    labels.push('}');
    (base.to_string(), labels)
}

/// Maps an internal metric name onto `[a-zA-Z_][a-zA-Z0-9_]*`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || (c.is_ascii_digit() && i > 0) {
            out.push(c);
        } else if c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the text format (`\\`, `\"`, `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value: finite numbers via `Display`, non-finite via the
/// format's `+Inf`/`-Inf`/`NaN` spellings.
fn number(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memaging_obs::Registry;

    #[test]
    fn renders_counters_gauges_and_labels() {
        let mut registry = Registry::default();
        registry.add("tuner.iterations", 42);
        registry.set("aging.r_max_ohms{layer=0}", 95_000.0);
        registry.set("aging.r_max_ohms{layer=1}", 83_912.4);
        registry.set("health.sessions_to_failure", 12.5);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE tuner_iterations_total counter\n"));
        assert!(text.contains("tuner_iterations_total 42\n"));
        assert!(text.contains("# TYPE aging_r_max_ohms gauge\n"));
        assert!(text.contains("aging_r_max_ohms{layer=\"0\"} 95000\n"));
        assert!(text.contains("aging_r_max_ohms{layer=\"1\"} 83912.4\n"));
        assert!(text.contains("health_sessions_to_failure 12.5\n"));
        // One TYPE line per family, not per labeled series.
        assert_eq!(text.matches("# TYPE aging_r_max_ohms ").count(), 1);
    }

    #[test]
    fn renders_cumulative_histogram_buckets() {
        let mut registry = Registry::default();
        registry.declare_histogram("train.epoch_loss", &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            registry.observe("train.epoch_loss", v);
        }
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE train_epoch_loss histogram\n"));
        assert!(text.contains("train_epoch_loss_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("train_epoch_loss_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("train_epoch_loss_bucket{le=\"10\"} 4\n"));
        assert!(text.contains("train_epoch_loss_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("train_epoch_loss_sum 56.05\n"));
        assert!(text.contains("train_epoch_loss_count 5\n"));
    }

    #[test]
    fn non_finite_gauges_use_format_spellings() {
        let mut registry = Registry::default();
        registry.set("a", f64::NAN);
        registry.set("b", f64::INFINITY);
        registry.set("c", f64::NEG_INFINITY);
        let text = render(&registry.snapshot());
        assert!(text.contains("a NaN\n"));
        assert!(text.contains("b +Inf\n"));
        assert!(text.contains("c -Inf\n"));
    }

    #[test]
    fn hostile_names_and_labels_are_sanitized() {
        let mut registry = Registry::default();
        registry.set("0weird metric-name{key=va\"lue}", 1.0);
        let text = render(&registry.snapshot());
        assert!(text.contains("_0weird_metric_name{key=\"va\\\"lue\"} 1\n"), "got: {text}");
    }

    #[test]
    fn exposition_is_byte_identical_across_insertion_orders() {
        // Satellite guarantee: the sorted snapshot is the single source of
        // truth, so two registries reaching the same state in different
        // orders must render to exactly the same bytes — and the pretty
        // `--metrics` table (MetricsSnapshot::Display) must agree too.
        let mut forward = Registry::default();
        forward.add("a.counter", 1);
        forward.add("b.counter", 2);
        forward.set("x.gauge{layer=0}", 0.5);
        forward.set("x.gauge{layer=1}", 0.25);
        forward.observe("h.hist", 3.0);
        let mut reverse = Registry::default();
        reverse.observe("h.hist", 3.0);
        reverse.set("x.gauge{layer=1}", 0.25);
        reverse.set("x.gauge{layer=0}", 0.5);
        reverse.add("b.counter", 2);
        reverse.add("a.counter", 1);
        let (f, r) = (forward.snapshot(), reverse.snapshot());
        assert_eq!(render(&f).into_bytes(), render(&r).into_bytes());
        assert_eq!(f.to_string(), r.to_string());
    }
}
