//! Pre-calibrated experiment scenarios: the paper's two test cases
//! (LeNet-5 / Cifar10, VGG-16 / Cifar100) at simulation scale, plus a quick
//! MLP scenario for tests and examples.
//!
//! A [`Scenario`] bundles the architecture, the synthetic dataset stand-in,
//! the two-stage training plan and the lifetime-simulation parameters with
//! an *accelerated* aging magnitude. The acceleration is a deliberate,
//! documented substitution (see `DESIGN.md` §5): real endurance is 10⁶–10¹⁰
//! cycles, which no behavioural simulation can step through one pulse at a
//! time; scaling `A_f` compresses the whole lifetime trajectory into tens of
//! maintenance sessions while preserving every *relative* effect the paper
//! measures (strategy ordering, conv-vs-FC asymmetry, the tuning-iteration
//! blow-up at end of life).

use memaging_dataset::{Dataset, SyntheticSpec};
use memaging_device::ArrheniusAging;
use memaging_lifetime::Strategy;
use memaging_nn::TrainConfig;

use crate::error::FrameworkError;
use crate::framework::{Framework, StrategyOutcome, TrainingPlan};
use crate::model::ModelKind;

/// Which synthetic generator a scenario draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataGenerator {
    /// Smooth gaussian-prototype classes ([`Dataset::gaussian_blobs`]).
    Blobs,
    /// Parametric geometric shapes ([`Dataset::shapes`]).
    Shapes,
}

/// A fully-specified, reproducible experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name, e.g. `"LeNet-5 (scaled) / synthetic-10"`.
    pub name: String,
    /// The synthetic dataset specification.
    pub data_spec: SyntheticSpec,
    /// The generator family.
    pub generator: DataGenerator,
    /// Fraction of the dataset used as the tuning/calibration subset.
    pub calib_fraction: f64,
    /// The framework (model, device, aging, training, lifetime).
    pub framework: Framework,
    /// Master seed for model init and training shuffles.
    pub seed: u64,
}

impl Scenario {
    /// The accelerated aging model shared by the scenarios: power-weighted
    /// Arrhenius stress with super-linear Joule acceleration (`γ = 2.5`) and
    /// strong substrate thermal crosstalk, with magnitudes fitted so whole
    /// lifetimes fit in tens-to-hundreds of maintenance sessions (see
    /// `DESIGN.md` §5 and the module docs).
    pub fn accelerated_aging() -> ArrheniusAging {
        ArrheniusAging {
            a_f: 1.0e16,
            a_g: 1.2e15,
            power_exponent: 2.5,
            thermal_coupling: 4.0,
            ..ArrheniusAging::default()
        }
    }

    /// The paper's first test case at simulation scale: scaled LeNet-5 on a
    /// 10-class Cifar10 stand-in.
    pub fn lenet() -> Self {
        let mut framework = Framework::new(ModelKind::Lenet5Scaled { channels: 1, classes: 10 });
        framework.plan = TrainingPlan {
            pre_epochs: 14,
            skew_epochs: 40,
            base: TrainConfig { learning_rate: 0.03, ..TrainConfig::default() },
            // The conv net needs a gentler, longer skew stage than the MLP
            // testbed (small conv layers have little redundancy to absorb
            // the penalty) — see the Table II sweep in `exp_table2`.
            skew: crate::framework::SkewParams { c: 0.2, lambda1: 0.05, lambda2: 1.0e-3 },
            skew_lr_scale: 0.5,
            skew_conv_layers: false,
            ..TrainingPlan::default()
        };
        framework.aging = Scenario::accelerated_aging();
        framework.lifetime.target_accuracy = 0.75;
        framework.lifetime.max_sessions = 400;
        framework.lifetime.max_tuning_iterations = 150;
        framework.lifetime.drift_probability = 0.8;
        framework.lifetime.drift_sigma = 0.06;
        framework.lifetime.remap_trigger = 0.05;
        Scenario {
            name: "LeNet-5 (scaled) / synthetic-10".into(),
            data_spec: SyntheticSpec {
                classes: 10,
                channels: 1,
                height: 12,
                width: 12,
                samples_per_class: 100,
                noise_std: 1.0,
                seed: 101,
            },
            generator: DataGenerator::Blobs,
            calib_fraction: 0.3,
            framework,
            seed: 11,
        }
    }

    /// The paper's second test case at simulation scale: scaled VGG-16 on a
    /// many-class Cifar100 stand-in (geometric shapes).
    pub fn vgg() -> Self {
        let mut framework = Framework::new(ModelKind::Vgg16Scaled { channels: 1, classes: 20 });
        framework.plan = TrainingPlan {
            pre_epochs: 100,
            skew_epochs: 30,
            base: TrainConfig { learning_rate: 0.01, ..TrainConfig::default() },
            // VGG is deeper and more parameter-sensitive: the paper keeps
            // lambda1 == lambda2 for it (Table II discussion); like the
            // LeNet scenario, the scaled conv kernels stay on plain L2.
            skew: crate::framework::SkewParams { c: 0.2, lambda1: 0.1, lambda2: 2.0e-3 },
            skew_lr_scale: 0.5,
            skew_conv_layers: false,
            ..TrainingPlan::default()
        };
        framework.aging = Scenario::accelerated_aging();
        framework.lifetime.target_accuracy = 0.55;
        framework.lifetime.max_sessions = 250;
        framework.lifetime.max_tuning_iterations = 150;
        framework.lifetime.drift_probability = 0.8;
        framework.lifetime.drift_sigma = 0.06;
        framework.lifetime.remap_trigger = 0.05;
        framework.lifetime.batch_size = 25;
        Scenario {
            name: "VGG-16 (scaled) / synthetic-20".into(),
            data_spec: SyntheticSpec {
                classes: 20,
                channels: 1,
                height: 16,
                width: 16,
                samples_per_class: 20,
                noise_std: 0.25,
                seed: 202,
            },
            generator: DataGenerator::Shapes,
            calib_fraction: 0.4,
            framework,
            seed: 22,
        }
    }

    /// A fast MLP scenario for smoke tests and the quickstart example; this
    /// is also the calibration testbed used for the aging constants (8-class
    /// noisy blobs, 144-24-8 MLP).
    pub fn quick() -> Self {
        let mut framework = Framework::new(ModelKind::Mlp(vec![144, 24, 8]));
        framework.plan.pre_epochs = 12;
        framework.plan.skew_epochs = 10;
        framework.aging = Scenario::accelerated_aging();
        framework.lifetime.target_accuracy = 0.88;
        framework.lifetime.max_sessions = 400;
        framework.lifetime.max_tuning_iterations = 100;
        framework.lifetime.drift_probability = 0.8;
        framework.lifetime.drift_sigma = 0.06;
        framework.lifetime.remap_trigger = 0.05;
        Scenario {
            name: "MLP / synthetic-8 (quick)".into(),
            data_spec: SyntheticSpec {
                classes: 8,
                channels: 1,
                height: 12,
                width: 12,
                samples_per_class: 50,
                noise_std: 0.8,
                seed: 77,
            },
            generator: DataGenerator::Blobs,
            calib_fraction: 0.5,
            framework,
            seed: 7,
        }
    }

    /// Generates (and normalizes) the scenario's dataset.
    ///
    /// # Errors
    ///
    /// Propagates dataset generation errors.
    pub fn dataset(&self) -> Result<Dataset, FrameworkError> {
        let mut data = match self.generator {
            DataGenerator::Blobs => Dataset::gaussian_blobs(&self.data_spec)?,
            DataGenerator::Shapes => Dataset::shapes(&self.data_spec)?,
        };
        data.normalize();
        Ok(data)
    }

    /// Splits the scenario dataset into `(train, calibration)`: training
    /// uses `1 − calib_fraction` of each class; the held-out calibration
    /// subset drives online tuning and lifetime evaluation, so memorization
    /// cannot inflate the deployed accuracy.
    ///
    /// # Errors
    ///
    /// Propagates dataset errors.
    pub fn train_calib_split(&self, data: &Dataset) -> Result<(Dataset, Dataset), FrameworkError> {
        Ok(data.split(1.0 - self.calib_fraction)?)
    }

    /// The held-out calibration subset (see
    /// [`Scenario::train_calib_split`]).
    ///
    /// # Errors
    ///
    /// Propagates dataset errors.
    pub fn calibration(&self, data: &Dataset) -> Result<Dataset, FrameworkError> {
        Ok(self.train_calib_split(data)?.1)
    }

    /// Runs one strategy end-to-end: generate data, train on the training
    /// split, simulate lifetime against the held-out calibration subset.
    ///
    /// # Errors
    ///
    /// Propagates framework errors.
    pub fn run_strategy(&self, strategy: Strategy) -> Result<StrategyOutcome, FrameworkError> {
        let data = self.dataset()?;
        let (train, calib) = self.train_calib_split(&data)?;
        self.framework.run_strategy_with_calib(&train, &calib, strategy, self.seed)
    }

    /// Runs all three strategies in Table-I order.
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn run_all(&self) -> Result<Vec<StrategyOutcome>, FrameworkError> {
        let data = self.dataset()?;
        let (train, calib) = self.train_calib_split(&data)?;
        Strategy::ALL
            .iter()
            .map(|&s| self.framework.run_strategy_with_calib(&train, &calib, s, self.seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_generate_valid_datasets() {
        for scenario in [Scenario::lenet(), Scenario::quick()] {
            let data = scenario.dataset().unwrap();
            assert_eq!(data.num_classes(), scenario.data_spec.classes);
            let calib = scenario.calibration(&data).unwrap();
            assert!(calib.len() < data.len());
            assert!(!calib.is_empty());
        }
    }

    #[test]
    fn vgg_scenario_dataset_matches_model_input() {
        let s = Scenario::vgg();
        let data = s.dataset().unwrap();
        let (c, h, w) = data.image_shape();
        let net = s.framework.model.build(1).unwrap();
        assert_eq!(net.in_features(), c * h * w);
        assert_eq!(net.out_features(), s.data_spec.classes);
    }

    #[test]
    fn lenet_scenario_dataset_matches_model_input() {
        let s = Scenario::lenet();
        let data = s.dataset().unwrap();
        let (c, h, w) = data.image_shape();
        let net = s.framework.model.build(1).unwrap();
        assert_eq!(net.in_features(), c * h * w);
    }

    #[test]
    fn quick_scenario_runs_a_strategy() {
        let mut s = Scenario::quick();
        s.framework.lifetime.max_sessions = 2;
        let outcome = s.run_strategy(Strategy::TT).unwrap();
        assert!(!outcome.lifetime.sessions.is_empty());
        assert!(outcome.software_accuracy > 0.7);
    }
}
