//! # memaging
//!
//! A production-quality Rust reproduction of **"Aging-aware Lifetime
//! Enhancement for Memristor-based Neuromorphic Computing"** (S. Zhang,
//! G. L. Zhang, B. Li, H. Li, U. Schlichtmann — DATE 2019).
//!
//! Memristor crossbars accelerate neural-network vector–matrix products by
//! storing weights as programmable conductances, but every programming pulse
//! irreversibly shrinks a device's usable resistance window ("aging"). The
//! paper proposes a software/hardware co-optimization that extends crossbar
//! lifetime up to 11× at no hardware cost:
//!
//! 1. **Skewed-weight training** (eqs. 8–10): a two-segment regularizer
//!    concentrates weights toward small values, so mapped resistances are
//!    large, programming currents small, and aging slow;
//! 2. **Aging-aware mapping** (Fig. 8): representative 1-of-9 tracing
//!    estimates each array's aged window, and an iterative search selects
//!    the common mapping range that maximizes accuracy, cutting the online
//!    tuning iterations that would otherwise age the array further.
//!
//! This crate is the umbrella: it re-exports the substrate crates and adds
//! the end-to-end [`Framework`] (paper Fig. 5) plus pre-calibrated
//! [`Scenario`]s reproducing the paper's two test cases at simulation scale.
//!
//! ## Workspace layout
//!
//! | crate | contents |
//! |---|---|
//! | [`tensor`] | dense f32 tensors, matmul, im2col, histograms |
//! | [`dataset`] | synthetic CIFAR stand-ins (deterministic, seeded) |
//! | [`nn`] | from-scratch backprop stack + skewed regularizer |
//! | [`device`] | memristor cell: quantizer, Arrhenius aging, drift |
//! | [`crossbar`] | arrays, eq. 4 mapping, tracing, range selection, eq. 5 tuning |
//! | [`lifetime`] | serve → drift → re-map → tune loop; T+T / ST+T / ST+AT |
//! | [`obs`] | dependency-free metrics registry, span timers, JSONL tracing |
//! | [`par`] | scoped thread pool: deterministic parallel loops, `--threads` control |
//!
//! ## Quickstart
//!
//! ```no_run
//! use memaging::Scenario;
//! use memaging::lifetime::Strategy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::quick();
//! let outcome = scenario.run_strategy(Strategy::StAt)?;
//! println!(
//!     "{} software acc {:.3}, lifetime {} applications",
//!     outcome.strategy, outcome.software_accuracy, outcome.lifetime.lifetime_applications
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analyze;
mod error;
mod framework;
mod model;
mod scenario;
mod study;

pub use analyze::{
    analyze_file, analyze_lines, diff, AnalyzeOptions, DiffReport, DiffRow, PhaseStat, TileFit,
    TraceAnalysis,
};
pub use error::FrameworkError;
pub use framework::{Framework, SkewParams, StrategyOutcome, TrainedModel, TrainingPlan};
pub use model::ModelKind;
pub use scenario::{DataGenerator, Scenario};
pub use study::{run_study, StrategyStats, StudyReport};

pub use memaging_crossbar as crossbar;
pub use memaging_dataset as dataset;
pub use memaging_device as device;
pub use memaging_fleet as fleet;
pub use memaging_lifetime as lifetime;
pub use memaging_nn as nn;
pub use memaging_obs as obs;
pub use memaging_par as par;
pub use memaging_serve as serve;
pub use memaging_tensor as tensor;
