//! Top-level framework error.

use std::error::Error;
use std::fmt;

use memaging_crossbar::CrossbarError;
use memaging_dataset::DatasetError;
use memaging_device::DeviceError;
use memaging_lifetime::LifetimeError;
use memaging_nn::NnError;
use memaging_tensor::TensorError;

/// Any error the co-optimization framework can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameworkError {
    /// Tensor-level failure.
    Tensor(TensorError),
    /// Dataset construction failure.
    Dataset(DatasetError),
    /// Network/training failure.
    Network(NnError),
    /// Device-model failure.
    Device(DeviceError),
    /// Crossbar mapping/tuning failure.
    Crossbar(CrossbarError),
    /// Lifetime simulation failure.
    Lifetime(LifetimeError),
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::Tensor(e) => write!(f, "{e}"),
            FrameworkError::Dataset(e) => write!(f, "{e}"),
            FrameworkError::Network(e) => write!(f, "{e}"),
            FrameworkError::Device(e) => write!(f, "{e}"),
            FrameworkError::Crossbar(e) => write!(f, "{e}"),
            FrameworkError::Lifetime(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FrameworkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameworkError::Tensor(e) => Some(e),
            FrameworkError::Dataset(e) => Some(e),
            FrameworkError::Network(e) => Some(e),
            FrameworkError::Device(e) => Some(e),
            FrameworkError::Crossbar(e) => Some(e),
            FrameworkError::Lifetime(e) => Some(e),
        }
    }
}

impl From<TensorError> for FrameworkError {
    fn from(e: TensorError) -> Self {
        FrameworkError::Tensor(e)
    }
}

impl From<DatasetError> for FrameworkError {
    fn from(e: DatasetError) -> Self {
        FrameworkError::Dataset(e)
    }
}

impl From<NnError> for FrameworkError {
    fn from(e: NnError) -> Self {
        FrameworkError::Network(e)
    }
}

impl From<DeviceError> for FrameworkError {
    fn from(e: DeviceError) -> Self {
        FrameworkError::Device(e)
    }
}

impl From<CrossbarError> for FrameworkError {
    fn from(e: CrossbarError) -> Self {
        FrameworkError::Crossbar(e)
    }
}

impl From<LifetimeError> for FrameworkError {
    fn from(e: LifetimeError) -> Self {
        FrameworkError::Lifetime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_all_layers_with_sources() {
        let errors: Vec<FrameworkError> = vec![
            TensorError::RankMismatch { expected: 2, actual: 1, op: "x" }.into(),
            DatasetError::InvalidConfig { reason: "d".into() }.into(),
            NnError::InvalidConfig { reason: "n".into() }.into(),
            DeviceError::ProgramOnDeadDevice.into(),
            CrossbarError::InvalidMapping { reason: "c".into() }.into(),
            LifetimeError::InvalidConfig { reason: "l".into() }.into(),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(Error::source(&e).is_some());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameworkError>();
    }
}
