//! Offline trace analysis — the engine behind `memaging analyze`.
//!
//! A JSONL trace (from `--trace`, or a flight-recorder dump) is a complete,
//! deterministic record of a run: every span, counter, gauge, latency
//! observation, wear checkpoint, and series point, keyed by admission
//! sequence rather than wall clock. This module replays such a trace
//! through the *same* aggregation code the live tier runs —
//! [`memaging_obs::ShardedHistogram`] for latency,
//! [`memaging_lifetime::WearLedger`] for attribution,
//! [`memaging_obs::SeriesStore`] + [`memaging_lifetime::trend`] for the
//! per-tile lifetime forecast — so the analyzer's latency and attribution
//! documents are **byte-for-byte identical** to the live
//! `GET /serve/latency` and `GET /wear/attribution` bodies at the moment
//! the trace ended (`exp_serve` asserts exactly that).
//!
//! On top of the replay it reconstructs what the live tier never serves:
//! per-phase self/total time from the span tree (a span's *self* time is
//! its duration minus its direct children's), and a two-run regression
//! diff ([`diff`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use memaging_lifetime::{
    trend, worst_tile, TileTrend, WearCause, WearLedger, WearThresholds, DEFAULT_FORECAST_WINDOW,
};
use memaging_obs::{
    latency_detail_json, Event, LatencySnapshot, SeriesStore, ShardedHistogram,
    DEFAULT_SERIES_CAPACITY,
};

/// Fixed-point scale of the serve tier's wear series (parts-per-billion of
/// the fresh window) — must match the engine's encoding for the forecast
/// replay to agree with the live gauges.
const SERIES_SCALE: f64 = 1e9;

/// Knobs of one analysis pass. The defaults mirror the live tier's
/// defaults, so analyzing a default-configured run reproduces its live
/// documents without any flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzeOptions {
    /// Power-of-2 buckets per replayed latency histogram — must match the
    /// run's [`memaging_serve::ServeConfig::latency_buckets`] for the
    /// byte-identical guarantee.
    pub latency_buckets: usize,
    /// Ring capacity of the replayed [`SeriesStore`] — must match the
    /// run's store for byte-identical `/timeseries` output.
    pub series_capacity: usize,
    /// Regression window of the forecast refit
    /// ([`memaging_serve::ServeConfig::forecast_window`]).
    pub forecast_window: usize,
    /// Critical window fraction the forecast extrapolates toward
    /// ([`WearThresholds::critical_window_fraction`]).
    pub critical_window_fraction: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            latency_buckets: 40,
            series_capacity: DEFAULT_SERIES_CAPACITY,
            forecast_window: DEFAULT_FORECAST_WINDOW,
            critical_window_fraction: WearThresholds::default().critical_window_fraction,
        }
    }
}

/// Aggregated timing of one span name across a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name, e.g. `serve.forward` or `tune`.
    pub name: String,
    /// Spans aggregated.
    pub count: u64,
    /// Total wall-clock microseconds (sum of span durations).
    pub total_us: u64,
    /// Self microseconds: total minus time spent in direct child spans
    /// (same worker and trace id, nested by interval containment).
    pub self_us: u64,
}

/// The four replayed serving-latency stages, in request-life order and
/// under the exact stage names `GET /serve/latency` uses.
#[derive(Debug)]
struct LatencyReplay {
    buckets: usize,
    queue_wait: ShardedHistogram,
    linger: ShardedHistogram,
    forward: ShardedHistogram,
    e2e: ShardedHistogram,
}

impl LatencyReplay {
    fn new(buckets: usize) -> Self {
        LatencyReplay {
            buckets,
            queue_wait: ShardedHistogram::new(1, buckets),
            linger: ShardedHistogram::new(1, buckets),
            forward: ShardedHistogram::new(1, buckets),
            e2e: ShardedHistogram::new(1, buckets),
        }
    }

    /// Routes one `serve.*` observation into its stage; returns whether the
    /// name was a latency stage. `serve.service_us` feeds the `forward`
    /// stage — the live tier records the per-request forward time under
    /// both names.
    fn observe(&self, name: &str, value: f64) -> bool {
        let stage = match name {
            "serve.queue_wait_us" => &self.queue_wait,
            "serve.linger_us" => &self.linger,
            "serve.service_us" => &self.forward,
            "serve.e2e_us" => &self.e2e,
            _ => return false,
        };
        stage.record(0, value.round().max(0.0) as u64);
        true
    }

    fn snapshots(&self) -> [(&'static str, LatencySnapshot); 4] {
        [
            ("queue_wait_us", self.queue_wait.snapshot()),
            ("linger_us", self.linger.snapshot()),
            ("forward_us", self.forward.snapshot()),
            ("e2e_us", self.e2e.snapshot()),
        ]
    }
}

/// One tile's fitted lifetime trend, keyed by tile index.
pub type TileFit = (usize, TileTrend);

/// Everything one trace replays to. Build with [`analyze_file`] or
/// [`analyze_lines`]; render with [`TraceAnalysis::report`] (text) or
/// [`TraceAnalysis::to_json`] (machine-readable).
#[derive(Debug)]
pub struct TraceAnalysis {
    /// Where the trace came from (path or label).
    pub source: String,
    /// Total events parsed.
    pub events: usize,
    /// Per-phase timing, in first-appearance order.
    pub phases: Vec<PhaseStat>,
    /// Final counter totals (last `total` wins — counters are cumulative).
    pub counters: BTreeMap<String, u64>,
    /// Alert events seen.
    pub alerts: usize,
    /// The replayed wear-attribution ledger; `None` when the trace has no
    /// wear checkpoints.
    pub ledger: Option<WearLedger>,
    /// Per-replica ledgers replayed from `replica{r}.`-prefixed wear
    /// causes (fleet traces), keyed by replica id. Tile indices are only
    /// meaningful within one replica's ledger — folding them into one
    /// account would silently alias tiles across replicas.
    pub replica_ledgers: BTreeMap<usize, WearLedger>,
    /// The replayed deterministic time-series store.
    pub series: SeriesStore,
    latency: LatencyReplay,
    options: AnalyzeOptions,
}

/// One span, flattened for the nesting reconstruction.
struct SpanRec {
    name: String,
    worker: Option<u64>,
    trace: Option<u64>,
    start: u64,
    end: u64,
    dur: u64,
}

/// Analyzes a JSONL trace file. Strict: the first malformed line aborts
/// with its line number — a trace that doesn't round-trip is a bug worth
/// surfacing, not skipping.
///
/// # Errors
///
/// Returns the I/O failure or `path:line: parse error` of the first bad
/// line.
pub fn analyze_file(path: &str, options: &AnalyzeOptions) -> Result<TraceAnalysis, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    analyze_lines(path, text.lines(), options)
}

/// Analyzes an in-memory trace, one JSON event per item. Blank lines are
/// skipped (JSONL writers end files with a newline).
///
/// # Errors
///
/// Returns `source:line: parse error` for the first malformed line.
pub fn analyze_lines<'a>(
    source: &str,
    lines: impl IntoIterator<Item = &'a str>,
    options: &AnalyzeOptions,
) -> Result<TraceAnalysis, String> {
    let mut analysis = TraceAnalysis {
        source: source.to_string(),
        events: 0,
        phases: Vec::new(),
        counters: BTreeMap::new(),
        alerts: 0,
        ledger: None,
        replica_ledgers: BTreeMap::new(),
        series: SeriesStore::with_capacity(options.series_capacity),
        latency: LatencyReplay::new(options.latency_buckets),
        options: *options,
    };
    let mut spans: Vec<SpanRec> = Vec::new();
    for (lineno, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json(line).map_err(|e| format!("{source}:{}: {e}", lineno + 1))?;
        analysis.events += 1;
        match event {
            Event::Span { name, worker, trace, start_us, duration_us, .. } => {
                spans.push(SpanRec {
                    name,
                    worker,
                    trace,
                    start: start_us,
                    end: start_us.saturating_add(duration_us),
                    dur: duration_us,
                });
            }
            Event::Observation { name, value, .. } => {
                analysis.latency.observe(&name, value);
            }
            Event::Counter { name, total, .. } => {
                analysis.counters.insert(name, total);
            }
            Event::Wear { cause, param, tiles } => {
                let (replica, kind) = split_replica_cause(&cause);
                let cause = match (kind, param) {
                    ("inference_read", Some(batch_seq)) => WearCause::InferenceRead { batch_seq },
                    ("remap", Some(generation)) => WearCause::Remap { generation },
                    ("tuning", None) => WearCause::Tuning,
                    (other, p) => {
                        return Err(format!(
                            "{source}:{}: unknown wear cause `{other}` (param {p:?})",
                            lineno + 1
                        ));
                    }
                };
                let ledger = match replica {
                    Some(r) => analysis
                        .replica_ledgers
                        .entry(r)
                        .or_insert_with(|| WearLedger::for_replica(tiles.len(), Some(r))),
                    None => analysis.ledger.get_or_insert_with(|| WearLedger::new(tiles.len())),
                };
                if tiles.len() != ledger.tiles() {
                    return Err(format!(
                        "{source}:{}: wear checkpoint has {} tiles, ledger tracks {}",
                        lineno + 1,
                        tiles.len(),
                        ledger.tiles()
                    ));
                }
                ledger.charge(cause, &tiles);
            }
            Event::Series { name, seq, value } => analysis.series.record(&name, seq, value),
            Event::Alert { .. } => analysis.alerts += 1,
            Event::Gauge { .. } | Event::Session { .. } | Event::Message { .. } => {}
        }
    }
    analysis.phases = phase_stats(&spans);
    Ok(analysis)
}

/// Splits an optional `replica{r}.` namespace off a wear cause string:
/// `replica3.remap` → `(Some(3), "remap")`, `remap` → `(None, "remap")`.
/// A `replica` prefix without a parsable id falls through unsplit so the
/// cause match reports it as unknown.
fn split_replica_cause(cause: &str) -> (Option<usize>, &str) {
    let Some(rest) = cause.strip_prefix("replica") else {
        return (None, cause);
    };
    let Some((id, kind)) = rest.split_once('.') else {
        return (None, cause);
    };
    match id.parse::<usize>() {
        Ok(replica) => (Some(replica), kind),
        Err(_) => (None, cause),
    }
}

/// Reconstructs the span tree and aggregates per-name self/total time.
///
/// Spans sharing a `(worker, trace)` key form one sequential timeline (the
/// recorder emits them from one thread per worker slot); within it, a span
/// whose interval lies inside another's is its child, and the parent's
/// self time excludes it. Sorting by (start asc, end desc) visits parents
/// before their children, so a simple containment stack suffices.
fn phase_stats(spans: &[SpanRec]) -> Vec<PhaseStat> {
    let mut groups: BTreeMap<(Option<u64>, Option<u64>), Vec<usize>> = BTreeMap::new();
    for (i, span) in spans.iter().enumerate() {
        groups.entry((span.worker, span.trace)).or_default().push(i);
    }
    let mut child_us = vec![0u64; spans.len()];
    for order in groups.values_mut() {
        order.sort_by_key(|&i| (spans[i].start, std::cmp::Reverse(spans[i].end), i));
        let mut stack: Vec<usize> = Vec::new();
        for &i in order.iter() {
            while let Some(&top) = stack.last() {
                // Pop finished ancestors and partial overlaps (an interval
                // the candidate is not contained in cannot be its parent).
                if spans[top].end <= spans[i].start || spans[top].end < spans[i].end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&parent) = stack.last() {
                child_us[parent] = child_us[parent].saturating_add(spans[i].dur);
            }
            stack.push(i);
        }
    }
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    let mut out: Vec<PhaseStat> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        let slot = *index.entry(&span.name).or_insert_with(|| {
            out.push(PhaseStat { name: span.name.clone(), count: 0, total_us: 0, self_us: 0 });
            out.len() - 1
        });
        out[slot].count += 1;
        out[slot].total_us += span.dur;
        out[slot].self_us += span.dur.saturating_sub(child_us[i]);
    }
    out
}

impl TraceAnalysis {
    /// The replayed `GET /serve/latency` body — byte-identical to the live
    /// server's when the trace covers the full run and the bucket count
    /// matches.
    pub fn latency_json(&self) -> String {
        latency_detail_json(self.latency.buckets, &self.latency.snapshots())
    }

    /// The replayed `GET /wear/attribution` body, or `"null"` when the
    /// trace carries no wear checkpoints. A fleet trace (replica-prefixed
    /// wear causes) renders the fleet form `{"replicas":[...]}` —
    /// byte-identical to the live fleet endpoint when the trace covers the
    /// full run.
    pub fn attribution_json(&self) -> String {
        if !self.replica_ledgers.is_empty() {
            let mut out = String::from("{\"replicas\":[");
            for (i, ledger) in self.replica_ledgers.values().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&ledger.to_json());
            }
            out.push_str("]}");
            return out;
        }
        match &self.ledger {
            Some(ledger) => ledger.to_json(),
            None => "null".into(),
        }
    }

    /// Max/mean ratio of per-replica attributed stress — the fleet wear
    /// imbalance the wear-balancing router minimizes (1.0 is perfectly
    /// balanced). `None` for non-fleet traces.
    pub fn fleet_imbalance(&self) -> Option<f64> {
        if self.replica_ledgers.is_empty() {
            return None;
        }
        let totals: Vec<f64> = self.replica_ledgers.values().map(WearLedger::total).collect();
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        if mean <= 0.0 {
            return Some(1.0);
        }
        Some(totals.iter().copied().fold(0.0f64, f64::max) / mean)
    }

    /// The replayed `GET /timeseries` body.
    pub fn series_json(&self) -> String {
        self.series.to_json()
    }

    /// Refits the per-tile lifetime forecast from the replayed
    /// `serve.window_fraction_ppb{tile=N}` series: every tile's trend plus
    /// the worst tile, exactly as the live engine computes them.
    pub fn forecast(&self) -> (Vec<TileFit>, Option<TileFit>) {
        let critical =
            (self.options.critical_window_fraction * SERIES_SCALE).round().max(0.0) as u64;
        let mut trends: Vec<TileFit> = Vec::new();
        for (name, snapshot) in self.series.snapshot_all() {
            let Some(tile) = name
                .strip_prefix("serve.window_fraction_ppb{tile=")
                .and_then(|rest| rest.strip_suffix('}'))
                .and_then(|t| t.parse::<usize>().ok())
            else {
                continue;
            };
            if let Some(fit) = trend(&snapshot.raw_points(), self.options.forecast_window, critical)
            {
                trends.push((tile, fit));
            }
        }
        trends.sort_by_key(|(tile, _)| *tile);
        let worst = worst_tile(&trends);
        (trends, worst)
    }

    /// Total spans aggregated across all phases.
    pub fn span_count(&self) -> u64 {
        self.phases.iter().map(|p| p.count).sum()
    }

    /// The machine-readable analysis document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"source\":");
        push_json_str(&mut out, &self.source);
        let _ = write!(out, ",\"events\":{},\"alerts\":{},\"phases\":[", self.events, self.alerts);
        for (i, phase) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &phase.name);
            let _ = write!(
                out,
                ",\"count\":{},\"total_us\":{},\"self_us\":{}}}",
                phase.count, phase.total_us, phase.self_us
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (name, total)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(out, ":{total}");
        }
        out.push_str("},\"latency\":");
        out.push_str(&self.latency_json());
        out.push_str(",\"attribution\":");
        out.push_str(&self.attribution_json());
        out.push_str(",\"series\":");
        out.push_str(&self.series_json());
        let (trends, worst) = self.forecast();
        out.push_str(",\"forecast\":{\"tiles\":[");
        for (i, (tile, fit)) in trends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"tile\":{tile},\"trend\":{}}}", fit.to_json());
        }
        out.push_str("],\"worst\":");
        match worst {
            Some((tile, fit)) => {
                let _ = write!(out, "{{\"tile\":{tile},\"trend\":{}}}", fit.to_json());
            }
            None => out.push_str("null"),
        }
        out.push_str("}}");
        out
    }

    /// The human-readable analysis report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} ({} events, {} spans, {} alerts)",
            self.source,
            self.events,
            self.span_count(),
            self.alerts
        );
        if !self.phases.is_empty() {
            let _ = writeln!(out, "phases:");
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>12} {:>12}",
                "name", "count", "total_us", "self_us"
            );
            for phase in &self.phases {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>8} {:>12} {:>12}",
                    phase.name, phase.count, phase.total_us, phase.self_us
                );
            }
        }
        let stages = self.latency.snapshots();
        if stages.iter().any(|(_, s)| s.count > 0) {
            let _ = writeln!(out, "latency (µs):");
            let _ = writeln!(
                out,
                "  {:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "stage", "count", "p50", "p90", "p99", "max"
            );
            for (name, snap) in &stages {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    name,
                    snap.count,
                    snap.quantile(0.50),
                    snap.quantile(0.90),
                    snap.quantile(0.99),
                    snap.max
                );
            }
        }
        if let Some(ledger) = &self.ledger {
            let _ = writeln!(
                out,
                "wear attribution: {} tiles, total stress {:.3e}s",
                ledger.tiles(),
                ledger.total()
            );
            for (cause, events, stress) in ledger.cause_totals() {
                let _ = writeln!(out, "  {cause:<16} {events:>6} events  {stress:.3e}s");
            }
        }
        if !self.replica_ledgers.is_empty() {
            let _ = writeln!(
                out,
                "fleet attribution: {} replicas, wear imbalance (max/mean) {:.4}",
                self.replica_ledgers.len(),
                self.fleet_imbalance().unwrap_or(1.0)
            );
            for (replica, ledger) in &self.replica_ledgers {
                let _ = writeln!(
                    out,
                    "  replica {replica}: {} tiles, total stress {:.3e}s",
                    ledger.tiles(),
                    ledger.total()
                );
            }
        }
        let (trends, worst) = self.forecast();
        if !trends.is_empty() {
            let _ = writeln!(out, "forecast ({} tiles fitted):", trends.len());
            for (tile, fit) in &trends {
                match fit.sessions_to_critical {
                    Some(k) => {
                        let _ = writeln!(
                            out,
                            "  tile {tile}: window {:.4}, velocity {:+.3e}/session, \
                             crosses critical in ~{k:.1} sessions",
                            fit.value as f64 / SERIES_SCALE,
                            fit.velocity / SERIES_SCALE
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  tile {tile}: window {:.4}, velocity {:+.3e}/session, \
                             never crosses critical",
                            fit.value as f64 / SERIES_SCALE,
                            fit.velocity / SERIES_SCALE
                        );
                    }
                }
            }
            if let Some((tile, _)) = worst {
                let _ = writeln!(out, "  worst tile: {tile}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, total) in &self.counters {
                let _ = writeln!(out, "  {name} = {total}");
            }
        }
        out
    }
}

/// One compared metric of a two-run diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric label, e.g. `latency.e2e_us.p99`.
    pub metric: String,
    /// Value in the baseline run.
    pub a: f64,
    /// Value in the candidate run.
    pub b: f64,
    /// Whether larger values are worse for this metric (latency, stress).
    pub higher_is_worse: bool,
}

impl DiffRow {
    /// Relative change from `a` to `b` (0 when both are 0).
    pub fn relative_delta(&self) -> f64 {
        if self.a == 0.0 && self.b == 0.0 {
            return 0.0;
        }
        (self.b - self.a) / self.a.abs().max(f64::MIN_POSITIVE)
    }
}

/// A two-run regression table (see [`diff`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Relative tolerance a change must exceed to be flagged.
    pub tolerance: f64,
    /// Every compared metric, in table order.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Rows whose change exceeds the tolerance *in the worse direction*.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|row| {
                let delta = row.relative_delta();
                delta.abs() > self.tolerance && (delta > 0.0) == row.higher_is_worse
            })
            .collect()
    }

    /// The regression table as text; flagged rows carry `REGRESSED` or
    /// `improved` markers.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>14} {:>14} {:>9}  flag",
            "metric", "baseline", "candidate", "delta"
        );
        for row in &self.rows {
            let delta = row.relative_delta();
            let flag = if delta.abs() <= self.tolerance {
                ""
            } else if (delta > 0.0) == row.higher_is_worse {
                "REGRESSED"
            } else {
                "improved"
            };
            let _ = writeln!(
                out,
                "{:<32} {:>14.3} {:>14.3} {:>+8.1}%  {flag}",
                row.metric,
                row.a,
                row.b,
                100.0 * delta
            );
        }
        let regressions = self.regressions().len();
        let _ = writeln!(
            out,
            "{regressions} regression(s) beyond {:.1}% tolerance",
            100.0 * self.tolerance
        );
        out
    }

    /// The regression table as JSON.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"tolerance\":{},\"rows\":[", self.tolerance);
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"metric\":");
            push_json_str(&mut out, &row.metric);
            let delta = row.relative_delta();
            let flag = if delta.abs() <= self.tolerance {
                "ok"
            } else if (delta > 0.0) == row.higher_is_worse {
                "regressed"
            } else {
                "improved"
            };
            let _ = write!(
                out,
                ",\"baseline\":{},\"candidate\":{},\"delta\":{delta},\"flag\":\"{flag}\"}}",
                row.a, row.b
            );
        }
        let _ = write!(out, "],\"regressions\":{}}}", self.regressions().len());
        out
    }
}

/// Diffs two analyzed runs into a regression table: per-phase self/total
/// time, per-stage latency percentiles, counters, and attributed stress.
/// Metrics present in only one run are compared against 0.
pub fn diff(a: &TraceAnalysis, b: &TraceAnalysis, tolerance: f64) -> DiffReport {
    let mut rows = Vec::new();
    let phase_names: Vec<&str> = {
        let mut names: Vec<&str> = a.phases.iter().map(|p| p.name.as_str()).collect();
        for p in &b.phases {
            if !names.contains(&p.name.as_str()) {
                names.push(&p.name);
            }
        }
        names
    };
    let phase = |run: &TraceAnalysis, name: &str| -> (f64, f64) {
        run.phases
            .iter()
            .find(|p| p.name == name)
            .map_or((0.0, 0.0), |p| (p.total_us as f64, p.self_us as f64))
    };
    for name in phase_names {
        let (at, aself) = phase(a, name);
        let (bt, bself) = phase(b, name);
        rows.push(DiffRow {
            metric: format!("phase.{name}.total_us"),
            a: at,
            b: bt,
            higher_is_worse: true,
        });
        rows.push(DiffRow {
            metric: format!("phase.{name}.self_us"),
            a: aself,
            b: bself,
            higher_is_worse: true,
        });
    }
    for ((name, sa), (_, sb)) in a.latency.snapshots().iter().zip(b.latency.snapshots().iter()) {
        rows.push(DiffRow {
            metric: format!("latency.{name}.count"),
            a: sa.count as f64,
            b: sb.count as f64,
            higher_is_worse: false,
        });
        for (q, label) in [(0.50, "p50"), (0.99, "p99")] {
            rows.push(DiffRow {
                metric: format!("latency.{name}.{label}"),
                a: sa.quantile(q) as f64,
                b: sb.quantile(q) as f64,
                higher_is_worse: true,
            });
        }
    }
    let counter_names: Vec<&String> = {
        let mut names: Vec<&String> = a.counters.keys().collect();
        for name in b.counters.keys() {
            if !names.contains(&name) {
                names.push(name);
            }
        }
        names.sort();
        names
    };
    for name in counter_names {
        rows.push(DiffRow {
            metric: format!("counter.{name}"),
            a: a.counters.get(name).copied().unwrap_or(0) as f64,
            b: b.counters.get(name).copied().unwrap_or(0) as f64,
            // Work counters measure programming effort the delta-remap
            // path exists to avoid: a rise means fewer cells skipped,
            // i.e. an efficiency regression. Throughput-style counters
            // keep the usual lower-is-worse reading.
            higher_is_worse: matches!(name.as_str(), "mapping.cells_programmed" | "mapping.pulses"),
        });
    }
    let skipped_frac = |run: &TraceAnalysis| -> Option<f64> {
        let programmed = *run.counters.get("mapping.cells_programmed")?;
        let skipped = *run.counters.get("mapping.cells_skipped")?;
        let total = programmed + skipped;
        (total > 0).then(|| skipped as f64 / total as f64)
    };
    if let (Some(fa), Some(fb)) = (skipped_frac(a), skipped_frac(b)) {
        // Length-normalized view of the same signal: robust when the two
        // runs programmed different total cell counts.
        rows.push(DiffRow {
            metric: "remap.cells_skipped_frac".to_string(),
            a: fa,
            b: fb,
            higher_is_worse: false,
        });
    }
    if let (Some(ia), Some(ib)) = (a.fleet_imbalance(), b.fleet_imbalance()) {
        // The fleet router's gated signal: max/mean per-replica attributed
        // stress. A rise means the fleet is wearing its hottest replica
        // faster than the average — a lifetime regression even when total
        // stress is unchanged.
        rows.push(DiffRow {
            metric: "fleet.wear_imbalance".to_string(),
            a: ia,
            b: ib,
            higher_is_worse: true,
        });
    }
    let stress = |run: &TraceAnalysis| -> Vec<(String, f64)> {
        let Some(ledger) = &run.ledger else { return Vec::new() };
        let mut out = vec![("attribution.total_stress".to_string(), ledger.total())];
        for (cause, _, total) in ledger.cause_totals() {
            out.push((format!("attribution.{cause}.stress"), total));
        }
        out
    };
    let (sa, sb) = (stress(a), stress(b));
    let names: Vec<&String> =
        if sa.is_empty() { sb.iter() } else { sa.iter() }.map(|(n, _)| n).collect();
    for name in names {
        let find =
            |set: &[(String, f64)]| set.iter().find(|(n, _)| n == name).map_or(0.0, |(_, v)| *v);
        rows.push(DiffRow {
            metric: name.clone(),
            a: find(&sa),
            b: find(&sb),
            higher_is_worse: true,
        });
    }
    DiffReport { tolerance, rows }
}

/// Appends a JSON string literal (RFC 8259 escaping).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> AnalyzeOptions {
        AnalyzeOptions::default()
    }

    #[test]
    fn phase_self_time_excludes_direct_children() {
        // parent [0, 100] with children [10, 30] and [40, 80]; the
        // grandchild [50, 60] charges the child, not the parent.
        let lines = [
            r#"{"type":"span","name":"child","trace":7,"start_us":10,"duration_us":20}"#,
            r#"{"type":"span","name":"grandchild","trace":7,"start_us":50,"duration_us":10}"#,
            r#"{"type":"span","name":"child","trace":7,"start_us":40,"duration_us":40}"#,
            r#"{"type":"span","name":"parent","trace":7,"start_us":0,"duration_us":100}"#,
        ];
        let analysis = analyze_lines("test", lines, &opts()).unwrap();
        let by_name: BTreeMap<&str, &PhaseStat> =
            analysis.phases.iter().map(|p| (p.name.as_str(), p)).collect();
        assert_eq!(by_name["parent"].total_us, 100);
        assert_eq!(by_name["parent"].self_us, 40); // 100 - 20 - 40
        assert_eq!(by_name["child"].count, 2);
        assert_eq!(by_name["child"].total_us, 60);
        assert_eq!(by_name["child"].self_us, 50); // 60 - grandchild's 10
        assert_eq!(by_name["grandchild"].self_us, 10);
    }

    #[test]
    fn spans_on_different_workers_do_not_nest() {
        let lines = [
            r#"{"type":"span","name":"a","worker":0,"start_us":0,"duration_us":100}"#,
            r#"{"type":"span","name":"b","worker":1,"start_us":10,"duration_us":20}"#,
        ];
        let analysis = analyze_lines("test", lines, &opts()).unwrap();
        let a = analysis.phases.iter().find(|p| p.name == "a").unwrap();
        assert_eq!(a.self_us, 100, "a worker boundary is a nesting boundary");
    }

    #[test]
    fn latency_replay_matches_the_live_renderer() {
        let lines = [
            r#"{"type":"histogram","name":"serve.queue_wait_us","value":300}"#,
            r#"{"type":"histogram","name":"serve.service_us","value":40}"#,
            r#"{"type":"histogram","name":"serve.e2e_us","value":350}"#,
            r#"{"type":"histogram","name":"serve.batch_size","value":2}"#,
        ];
        let analysis = analyze_lines("test", lines, &opts()).unwrap();
        let json = analysis.latency_json();
        assert!(json.starts_with("{\"buckets\":40,\"histograms\":{\"queue_wait_us\":"), "{json}");
        assert!(json.contains("\"queue_wait_us\":{\"count\":1,\"sum_us\":300,"), "{json}");
        assert!(json.contains("\"forward_us\":{\"count\":1,\"sum_us\":40,"), "{json}");
        assert!(json.contains("\"e2e_us\":{\"count\":1,\"sum_us\":350,"), "{json}");
        // batch_size is a histogram observation, not a latency stage.
        assert!(!json.contains("batch_size"));
    }

    #[test]
    fn wear_replay_rebuilds_the_ledger() {
        let lines = [
            r#"{"type":"wear","cause":"remap","param":0,"tiles":[0.5,0.25]}"#,
            r#"{"type":"wear","cause":"inference_read","param":64,"tiles":[1,0.5]}"#,
            r#"{"type":"wear","cause":"tuning","tiles":[1,0.75]}"#,
        ];
        let analysis = analyze_lines("test", lines, &opts()).unwrap();
        let ledger = analysis.ledger.as_ref().unwrap();
        assert_eq!(ledger.tiles(), 2);
        assert_eq!(ledger.entries().len(), 3);
        let json = analysis.attribution_json();
        assert!(json.contains("{\"cause\":\"inference_read\",\"batch_seq\":64,\"stress\":0.75}"));
        assert!(json.ends_with("\"per_tile\":[1,0.75]}"), "{json}");
    }

    #[test]
    fn fleet_wear_replay_folds_per_replica_ledgers() {
        let lines = [
            r#"{"type":"wear","cause":"replica0.remap","param":0,"tiles":[0.5,0.5]}"#,
            r#"{"type":"wear","cause":"replica1.remap","param":0,"tiles":[0.25,0.25]}"#,
            r#"{"type":"wear","cause":"replica0.inference_read","param":64,"tiles":[1.5,1.5]}"#,
        ];
        let analysis = analyze_lines("test", lines, &opts()).unwrap();
        assert!(analysis.ledger.is_none(), "prefixed causes must not feed the flat ledger");
        assert_eq!(analysis.replica_ledgers.len(), 2);
        assert_eq!(analysis.replica_ledgers[&0].total(), 3.0);
        assert_eq!(analysis.replica_ledgers[&0].replica(), Some(0));
        assert_eq!(analysis.replica_ledgers[&1].total(), 0.5);
        // max/mean over (3.0, 0.5).
        let imbalance = analysis.fleet_imbalance().unwrap();
        assert!((imbalance - 3.0 / 1.75).abs() < 1e-12, "imbalance {imbalance}");
        let json = analysis.attribution_json();
        assert!(json.starts_with("{\"replicas\":[{\"replica\":0,\"tiles\":2,"), "{json}");
        assert!(json.contains("{\"replica\":1,\"tiles\":2,"), "{json}");
        assert!(analysis.report().contains("fleet attribution: 2 replicas"));
    }

    #[test]
    fn malformed_replica_prefixes_are_unknown_causes() {
        for bad in [
            r#"{"type":"wear","cause":"replicaX.remap","param":0,"tiles":[1.0]}"#,
            r#"{"type":"wear","cause":"replica0.mystery","param":0,"tiles":[1.0]}"#,
        ] {
            let err = analyze_lines("t.jsonl", [bad], &opts()).unwrap_err();
            assert!(err.contains("unknown wear cause"), "got: {err}");
        }
    }

    #[test]
    fn diff_flags_fleet_imbalance_drift() {
        let balanced = [
            r#"{"type":"wear","cause":"replica0.remap","param":0,"tiles":[1.0]}"#,
            r#"{"type":"wear","cause":"replica1.remap","param":0,"tiles":[1.0]}"#,
        ];
        let lopsided = [
            r#"{"type":"wear","cause":"replica0.remap","param":0,"tiles":[3.0]}"#,
            r#"{"type":"wear","cause":"replica1.remap","param":0,"tiles":[1.0]}"#,
        ];
        let a = analyze_lines("a", balanced, &opts()).unwrap();
        let b = analyze_lines("b", lopsided, &opts()).unwrap();
        let report = diff(&a, &b, 0.05);
        let regressed: Vec<&str> = report.regressions().iter().map(|r| r.metric.as_str()).collect();
        assert!(regressed.contains(&"fleet.wear_imbalance"), "{regressed:?}");
        // Tightening the imbalance is an improvement, not a regression.
        let better = diff(&b, &a, 0.05);
        assert!(
            !better.regressions().iter().any(|r| r.metric == "fleet.wear_imbalance"),
            "{}",
            better.report()
        );
        // Non-fleet traces don't grow the row at all.
        let flat =
            analyze_lines("c", [r#"{"type":"wear","cause":"tuning","tiles":[1.0]}"#], &opts())
                .unwrap();
        let none = diff(&flat, &flat, 0.05);
        assert!(none.rows.iter().all(|r| r.metric != "fleet.wear_imbalance"));
    }

    #[test]
    fn series_replay_feeds_the_forecast() {
        // A linearly shrinking window: 1.0, 0.99, 0.98, ... per boundary.
        let mut lines = Vec::new();
        for k in 0..20u64 {
            lines.push(format!(
                "{{\"type\":\"series\",\"name\":\"serve.window_fraction_ppb{{tile=0}}\",\
                 \"seq\":{},\"value\":{}}}",
                k + 1,
                1_000_000_000 - 10_000_000 * k
            ));
        }
        let analysis = analyze_lines("test", lines.iter().map(String::as_str), &opts()).unwrap();
        let (trends, worst) = analysis.forecast();
        assert_eq!(trends.len(), 1);
        let (tile, fit) = worst.unwrap();
        assert_eq!(tile, 0);
        assert!((fit.velocity - -10_000_000.0).abs() < 1.0, "velocity {}", fit.velocity);
        // 810 ppb-millions left to the 0.3 critical at 10/session ≈ 51.
        let k = fit.sessions_to_critical.unwrap();
        assert!((k - 51.0).abs() < 0.5, "sessions_to_critical {k}");
    }

    #[test]
    fn malformed_lines_abort_with_the_line_number() {
        let lines = [r#"{"type":"message","text":"ok"}"#, "not json"];
        let err = analyze_lines("t.jsonl", lines, &opts()).unwrap_err();
        assert!(err.starts_with("t.jsonl:2:"), "got: {err}");
        let lines = [r#"{"type":"wear","cause":"mystery","tiles":[1.0]}"#];
        let err = analyze_lines("t.jsonl", lines, &opts()).unwrap_err();
        assert!(err.contains("unknown wear cause"), "got: {err}");
    }

    #[test]
    fn counters_keep_the_final_total() {
        let lines = [
            r#"{"type":"counter","name":"serve.remaps","delta":1,"total":1}"#,
            r#"{"type":"counter","name":"serve.remaps","delta":1,"total":2}"#,
        ];
        let analysis = analyze_lines("test", lines, &opts()).unwrap();
        assert_eq!(analysis.counters["serve.remaps"], 2);
    }

    #[test]
    fn json_and_report_render() {
        let lines = [
            r#"{"type":"span","name":"serve.batch","trace":0,"start_us":5,"duration_us":50}"#,
            r#"{"type":"histogram","name":"serve.e2e_us","value":120}"#,
            r#"{"type":"counter","name":"serve.expired","delta":1,"total":1}"#,
            r#"{"type":"wear","cause":"remap","param":0,"tiles":[0.125]}"#,
            r#"{"type":"series","name":"serve.window_fraction_ppb{tile=0}","seq":1,"value":900000000}"#,
        ];
        let analysis = analyze_lines("run.jsonl", lines, &opts()).unwrap();
        let json = analysis.to_json();
        assert!(json.starts_with("{\"source\":\"run.jsonl\",\"events\":5,\"alerts\":0,"), "{json}");
        assert!(json.contains("\"phases\":[{\"name\":\"serve.batch\",\"count\":1,\"total_us\":50,\"self_us\":50}]"), "{json}");
        assert!(json.contains("\"counters\":{\"serve.expired\":1}"), "{json}");
        assert!(json.contains("\"attribution\":{\"tiles\":1,"), "{json}");
        assert!(json.contains("\"forecast\":{\"tiles\":[{\"tile\":0,\"trend\":{"), "{json}");
        let report = analysis.report();
        assert!(report.contains("serve.batch"), "{report}");
        assert!(report.contains("wear attribution: 1 tiles"), "{report}");
    }

    #[test]
    fn diff_flags_regressions_in_the_worse_direction_only() {
        let base = [
            r#"{"type":"histogram","name":"serve.e2e_us","value":100}"#,
            r#"{"type":"counter","name":"serve.expired","delta":0,"total":0}"#,
        ];
        let slower = [
            r#"{"type":"histogram","name":"serve.e2e_us","value":400}"#,
            r#"{"type":"counter","name":"serve.expired","delta":0,"total":0}"#,
        ];
        let a = analyze_lines("a", base, &opts()).unwrap();
        let b = analyze_lines("b", slower, &opts()).unwrap();
        let report = diff(&a, &b, 0.05);
        let regressions = report.regressions();
        assert!(
            regressions.iter().any(|r| r.metric == "latency.e2e_us.p50"),
            "p50 climbed 127 -> 511: {:?}",
            regressions
        );
        // The reverse direction is an improvement, not a regression.
        let reverse = diff(&b, &a, 0.05);
        assert!(reverse.regressions().iter().all(|r| !r.metric.starts_with("latency.e2e_us.p")));
        assert!(report.report().contains("REGRESSED"));
        assert!(report.to_json().contains("\"flag\":\"regressed\""));
    }

    #[test]
    fn diff_flags_delta_remap_efficiency_drift() {
        // Same workload, but the candidate programmed cells the baseline
        // skipped: programming-work counters climbing is a REGRESSION
        // (delta-remap efficiency drift), not throughput growth.
        let base = [
            r#"{"type":"counter","name":"mapping.cells_programmed","delta":100,"total":100}"#,
            r#"{"type":"counter","name":"mapping.cells_skipped","delta":900,"total":900}"#,
            r#"{"type":"counter","name":"mapping.pulses","delta":500,"total":500}"#,
        ];
        let drifted = [
            r#"{"type":"counter","name":"mapping.cells_programmed","delta":600,"total":600}"#,
            r#"{"type":"counter","name":"mapping.cells_skipped","delta":400,"total":400}"#,
            r#"{"type":"counter","name":"mapping.pulses","delta":3000,"total":3000}"#,
        ];
        let a = analyze_lines("a", base, &opts()).unwrap();
        let b = analyze_lines("b", drifted, &opts()).unwrap();
        let report = diff(&a, &b, 0.05);
        let regressed: Vec<&str> = report.regressions().iter().map(|r| r.metric.as_str()).collect();
        assert!(regressed.contains(&"counter.mapping.cells_programmed"), "{regressed:?}");
        assert!(regressed.contains(&"counter.mapping.pulses"), "{regressed:?}");
        assert!(regressed.contains(&"remap.cells_skipped_frac"), "{regressed:?}");
        // The derived fraction row compares 0.9 against 0.4.
        let frac = report.rows.iter().find(|r| r.metric == "remap.cells_skipped_frac").unwrap();
        assert!((frac.a - 0.9).abs() < 1e-12 && (frac.b - 0.4).abs() < 1e-12);
        // Skipping *more* cells is an improvement in every direction.
        let better = diff(&b, &a, 0.05);
        assert!(
            better.regressions().is_empty(),
            "improvement misread as regression: {}",
            better.report()
        );
    }

    #[test]
    fn identical_runs_diff_clean() {
        let lines = [
            r#"{"type":"span","name":"serve.forward","worker":1,"trace":3,"start_us":10,"duration_us":25}"#,
            r#"{"type":"histogram","name":"serve.e2e_us","value":100}"#,
            r#"{"type":"wear","cause":"tuning","tiles":[0.5]}"#,
        ];
        let a = analyze_lines("a", lines, &opts()).unwrap();
        let b = analyze_lines("b", lines, &opts()).unwrap();
        let report = diff(&a, &b, 0.0);
        assert!(report.regressions().is_empty(), "{}", report.report());
        assert!(report.to_json().ends_with("\"regressions\":0}"));
    }
}
