//! The co-optimization framework of paper Fig. 5: software training
//! (traditional or skewed) → hardware mapping (fresh or aging-aware) →
//! online tuning → lifetime evaluation.

use memaging_dataset::Dataset;
use memaging_device::{ArrheniusAging, DeviceSpec};
use memaging_lifetime::{run_lifetime_with_recorder, LifetimeConfig, LifetimeResult, Strategy};
use memaging_nn::{evaluate, train_with_recorder, Network, SkewedL2, TrainConfig, TrainReport, L2};
use memaging_obs::Recorder;

use crate::error::FrameworkError;
use crate::model::ModelKind;

/// Skewed-training constants (paper Table II): `βᵢ = c·σᵢ`, penalties
/// `λ₁` (left of β) and `λ₂` (right of β).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewParams {
    /// Reference-weight multiplier `c` in `βᵢ = c·σᵢ`.
    pub c: f32,
    /// Left-side penalty `λ₁` (the larger one).
    pub lambda1: f32,
    /// Right-side penalty `λ₂`.
    pub lambda2: f32,
}

impl Default for SkewParams {
    fn default() -> Self {
        // Matches the spirit of the paper's Table II: beta one standard
        // deviation right of the mean, lambda1 two orders of magnitude above
        // lambda2. lambda1 must dominate the data gradient for weights left
        // of beta, otherwise stragglers anchor w_min low and the bulk of the
        // distribution ends up mid-range after mapping (small-R, high
        // current) instead of at the large-R end.
        SkewParams { c: 1.0, lambda1: 3.0e-1, lambda2: 1.0e-3 }
    }
}

/// The two-stage training plan of §IV-A: a conventional pre-training pass
/// (to learn the per-layer σᵢ) followed by skewed refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingPlan {
    /// Epoch budget for the conventional pre-training stage.
    pub pre_epochs: usize,
    /// Epoch budget for the skewed refinement stage (ignored for
    /// traditional training).
    pub skew_epochs: usize,
    /// Base hyper-parameters (learning rate, batch, momentum, seed).
    pub base: TrainConfig,
    /// Skewed-regularizer constants.
    pub skew: SkewParams,
    /// Learning-rate multiplier for the skewed refinement stage (the
    /// penalty gradient adds to the data gradient, so a lower rate keeps
    /// the stage stable on small conv nets).
    pub skew_lr_scale: f32,
    /// Whether convolutional layers receive the skewed penalty too. The
    /// paper applies it everywhere at CIFAR scale; at this repository's
    /// simulation scale the scaled conv layers are small enough that a
    /// distribution-shaping penalty collapses them, so the conv-substituted
    /// scenarios keep plain L2 on convolutions (the FC layers hold ~90% of
    /// the devices). See DESIGN.md §5.
    pub skew_conv_layers: bool,
    /// L2 strength used by the traditional (`T`) baseline.
    pub l2_lambda: f32,
}

impl Default for TrainingPlan {
    fn default() -> Self {
        TrainingPlan {
            pre_epochs: 10,
            skew_epochs: 8,
            base: TrainConfig::default(),
            skew: SkewParams::default(),
            skew_lr_scale: 1.0,
            skew_conv_layers: true,
            l2_lambda: 1.0e-4,
        }
    }
}

/// The trained outcome of the software stage.
#[derive(Debug)]
pub struct TrainedModel {
    /// The trained network.
    pub network: Network,
    /// Report of the (final) training stage.
    pub report: TrainReport,
    /// Software accuracy on the training set after all stages.
    pub software_accuracy: f64,
    /// Per-layer weight standard deviations after pre-training (the σᵢ the
    /// skewed stage used), if skewed training ran.
    pub sigma: Option<Vec<f32>>,
}

/// Everything measured for one strategy: training + lifetime.
#[derive(Debug)]
pub struct StrategyOutcome {
    /// The strategy.
    pub strategy: Strategy,
    /// Software accuracy after training.
    pub software_accuracy: f64,
    /// The lifetime simulation result.
    pub lifetime: LifetimeResult,
    /// Kinds of the mappable layers (for conv-vs-FC telemetry).
    pub layer_kinds: Vec<memaging_nn::LayerKind>,
}

/// The end-to-end co-optimization framework (paper Fig. 5).
///
/// # Examples
///
/// ```no_run
/// use memaging::{Framework, ModelKind};
/// use memaging_dataset::{Dataset, SyntheticSpec};
/// use memaging_lifetime::Strategy;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut data = Dataset::gaussian_blobs(&SyntheticSpec::small(10, 7))?;
/// data.normalize();
/// let framework = Framework::new(ModelKind::Lenet5Scaled { channels: 1, classes: 10 });
/// let outcome = framework.run_strategy(&data, Strategy::StAt, 42)?;
/// println!("{}: {} applications", outcome.strategy, outcome.lifetime.lifetime_applications);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Framework {
    /// The architecture to train and deploy.
    pub model: ModelKind,
    /// Device family parameters.
    pub spec: DeviceSpec,
    /// Aging model parameters.
    pub aging: ArrheniusAging,
    /// Training plan.
    pub plan: TrainingPlan,
    /// Lifetime simulation parameters (its `strategy` field is overwritten
    /// per run).
    pub lifetime: LifetimeConfig,
    /// Observability handle threaded through training, mapping, tuning and
    /// the lifetime loop. Disabled (free) by default; see
    /// [`Framework::with_recorder`].
    pub recorder: Recorder,
}

impl Framework {
    /// Creates a framework with default device, aging, training and
    /// lifetime parameters for `model`.
    pub fn new(model: ModelKind) -> Self {
        Framework {
            model,
            spec: DeviceSpec::default(),
            aging: ArrheniusAging::default(),
            plan: TrainingPlan::default(),
            lifetime: LifetimeConfig::default(),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder; every subsequent training,
    /// mapping, tuning and lifetime stage reports through it.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs the software-training stage for `strategy`.
    ///
    /// Traditional strategies train once with L2; skewed strategies
    /// pre-train with L2, derive `βᵢ = c·σᵢ` from the resulting layer
    /// deviations, and refine with the two-segment penalty (eqs. 8–10).
    ///
    /// # Errors
    ///
    /// Propagates training errors (divergence, invalid config).
    pub fn train_model(
        &self,
        data: &Dataset,
        strategy: Strategy,
        seed: u64,
    ) -> Result<TrainedModel, FrameworkError> {
        let mut network = self.model.build(seed)?;
        let pre_config = TrainConfig { epochs: self.plan.pre_epochs, ..self.plan.base };
        let l2 = L2::new(self.plan.l2_lambda);
        let mut report = train_with_recorder(&mut network, data, &pre_config, &l2, &self.recorder)?;
        let baseline_accuracy = evaluate(&mut network, data, self.plan.base.batch_size)?;
        let mut sigma = None;
        if strategy.uses_skewed_training() {
            // The two-segment penalty has a sharp stability boundary on
            // small networks: slightly too much lambda1 lets the penalty
            // overpower the (vanishing) data gradient and the distribution
            // collapses onto beta. Retry with halved penalties — the
            // equivalent of the per-network constant selection of the
            // paper's Table II.
            let mut lambda1 = self.plan.skew.lambda1;
            let mut lambda2 = self.plan.skew.lambda2;
            let mut last_err: Option<FrameworkError> = None;
            for _attempt in 0..3 {
                let mut candidate = self.model.build(seed)?;
                train_with_recorder(&mut candidate, data, &pre_config, &l2, &self.recorder)?;
                let stds = candidate.weight_stds();
                let skewed = SkewedL2::from_layer_stds(&stds, self.plan.skew.c, lambda1, lambda2);
                let kinds = candidate.mappable_kinds();
                let reg = memaging_nn::PerLayer::new(
                    kinds
                        .iter()
                        .map(|kind| {
                            if *kind == memaging_nn::LayerKind::Convolution
                                && !self.plan.skew_conv_layers
                            {
                                memaging_nn::WeightPenalty::L2(l2)
                            } else {
                                memaging_nn::WeightPenalty::Skewed(skewed.clone())
                            }
                        })
                        .collect(),
                );
                let skew_config = TrainConfig {
                    epochs: self.plan.skew_epochs,
                    learning_rate: self.plan.base.learning_rate * self.plan.skew_lr_scale,
                    ..self.plan.base
                };
                match train_with_recorder(&mut candidate, data, &skew_config, &reg, &self.recorder)
                {
                    Ok(skew_report) => {
                        let accuracy = evaluate(&mut candidate, data, self.plan.base.batch_size)?;
                        if accuracy >= 0.8 * baseline_accuracy {
                            network = candidate;
                            report = skew_report;
                            sigma = Some(stds);
                            last_err = None;
                            break;
                        }
                        // Collapsed onto beta: halve the penalty and retry.
                        last_err =
                            Some(FrameworkError::Network(memaging_nn::NnError::InvalidConfig {
                                reason: format!(
                                    "skewed stage collapsed to accuracy {accuracy:.3} \
                                     (baseline {baseline_accuracy:.3}) at lambda1 {lambda1}"
                                ),
                            }));
                    }
                    Err(e) => last_err = Some(e.into()),
                }
                lambda1 *= 0.5;
                lambda2 *= 0.5;
            }
            if let Some(e) = last_err {
                return Err(e);
            }
        }
        let software_accuracy = evaluate(&mut network, data, self.plan.base.batch_size)?;
        Ok(TrainedModel { network, report, software_accuracy, sigma })
    }

    /// Trains per `strategy` and runs the lifetime simulation.
    ///
    /// # Errors
    ///
    /// Propagates training and simulation errors.
    pub fn run_strategy(
        &self,
        data: &Dataset,
        strategy: Strategy,
        seed: u64,
    ) -> Result<StrategyOutcome, FrameworkError> {
        self.run_strategy_with_calib(data, data, strategy, seed)
    }

    /// Like [`Framework::run_strategy`], but tunes/evaluates the deployed
    /// hardware against a separate (typically smaller) calibration set —
    /// how a real deployment would periodically re-tune.
    ///
    /// # Errors
    ///
    /// Propagates training and simulation errors.
    pub fn run_strategy_with_calib(
        &self,
        train_data: &Dataset,
        calib_data: &Dataset,
        strategy: Strategy,
        seed: u64,
    ) -> Result<StrategyOutcome, FrameworkError> {
        let trained = self.train_model(train_data, strategy, seed)?;
        self.recorder.message_with(|| {
            format!("{strategy}: software accuracy {:.3}", trained.software_accuracy)
        });
        let layer_kinds = trained.network.mappable_kinds();
        let config = LifetimeConfig { strategy, ..self.lifetime };
        let lifetime = run_lifetime_with_recorder(
            trained.network,
            self.spec,
            self.aging,
            calib_data,
            &config,
            &self.recorder,
        )?;
        Ok(StrategyOutcome {
            strategy,
            software_accuracy: trained.software_accuracy,
            lifetime,
            layer_kinds,
        })
    }

    /// Runs all three paper strategies (`T+T`, `ST+T`, `ST+AT`) with the
    /// same seed, in Table-I order.
    ///
    /// # Errors
    ///
    /// Propagates the first strategy failure.
    pub fn run_all_strategies(
        &self,
        data: &Dataset,
        seed: u64,
    ) -> Result<Vec<StrategyOutcome>, FrameworkError> {
        Strategy::ALL.iter().map(|&s| self.run_strategy(data, s, seed)).collect()
    }

    /// Trains with and without the skewed penalty and reports both software
    /// accuracies — the paper's Table I accuracy-comparison columns.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn accuracy_comparison(
        &self,
        data: &Dataset,
        seed: u64,
    ) -> Result<(f64, f64), FrameworkError> {
        let baseline = self.train_model(data, Strategy::TT, seed)?;
        let skewed = self.train_model(data, Strategy::StT, seed)?;
        Ok((baseline.software_accuracy, skewed.software_accuracy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memaging_dataset::SyntheticSpec;

    fn quick_framework() -> Framework {
        let mut f = Framework::new(ModelKind::Mlp(vec![144, 16, 4]));
        f.plan.pre_epochs = 6;
        f.plan.skew_epochs = 5;
        f.lifetime.max_sessions = 3;
        f.lifetime.target_accuracy = 0.8;
        f.lifetime.max_tuning_iterations = 30;
        f
    }

    fn data(seed: u64) -> Dataset {
        let mut d = Dataset::gaussian_blobs(&SyntheticSpec::small(4, seed)).unwrap();
        d.normalize();
        d
    }

    #[test]
    fn traditional_training_has_no_sigma() {
        let f = quick_framework();
        let d = data(1);
        let t = f.train_model(&d, Strategy::TT, 1).unwrap();
        assert!(t.sigma.is_none());
        assert!(t.software_accuracy > 0.8);
    }

    #[test]
    fn skewed_training_records_sigma_and_shifts_weights() {
        let f = quick_framework();
        let d = data(2);
        let t = f.train_model(&d, Strategy::StT, 2).unwrap();
        let sigma = t.sigma.expect("skewed training must record sigma");
        assert_eq!(sigma.len(), 2);
        assert!(t.software_accuracy > 0.75, "accuracy {}", t.software_accuracy);
        // Weight mass should sit right of zero (toward beta > 0).
        let all: Vec<f32> =
            t.network.weight_matrices().iter().flat_map(|w| w.as_slice().to_vec()).collect();
        let mean: f32 = all.iter().sum::<f32>() / all.len() as f32;
        assert!(mean > 0.0, "skewed weights should have positive mean, got {mean}");
    }

    #[test]
    fn run_strategy_produces_lifetime() {
        let f = quick_framework();
        let d = data(3);
        let outcome = f.run_strategy(&d, Strategy::StAt, 3).unwrap();
        assert_eq!(outcome.strategy, Strategy::StAt);
        assert!(!outcome.lifetime.sessions.is_empty());
        assert_eq!(outcome.layer_kinds.len(), 2);
    }

    #[test]
    fn accuracy_comparison_returns_both() {
        let f = quick_framework();
        let d = data(4);
        let (base, skewed) = f.accuracy_comparison(&d, 4).unwrap();
        assert!(base > 0.7 && skewed > 0.7);
        // The paper finds the two within a couple of points of each other.
        assert!((base - skewed).abs() < 0.2, "base {base} vs skewed {skewed}");
    }
}
