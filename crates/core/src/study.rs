//! Multi-seed statistical studies: run a scenario's strategies across
//! several seeds and aggregate the lifetime distributions.
//!
//! Single-seed lifetime numbers are noisy (drift realizations, training
//! stochasticity); the paper reports one number per cell, but a credible
//! reproduction wants the spread. This module is the statistical backbone
//! of `exp_table1`.

use memaging_lifetime::Strategy;

use crate::error::FrameworkError;
use crate::scenario::Scenario;

/// Aggregate statistics of one strategy's lifetimes across seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyStats {
    /// The strategy.
    pub strategy: Strategy,
    /// Lifetime (applications served) per seed, in seed order.
    pub lifetimes: Vec<u64>,
    /// Software accuracy per seed.
    pub accuracies: Vec<f64>,
    /// Mean lifetime.
    pub mean: f64,
    /// Sample standard deviation of the lifetime (0 for a single seed).
    pub std: f64,
    /// Smallest lifetime observed.
    pub min: u64,
    /// Largest lifetime observed.
    pub max: u64,
}

impl StrategyStats {
    fn from_runs(strategy: Strategy, lifetimes: Vec<u64>, accuracies: Vec<f64>) -> Self {
        let n = lifetimes.len().max(1) as f64;
        let mean = lifetimes.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = if lifetimes.len() > 1 {
            lifetimes.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>()
                / (lifetimes.len() - 1) as f64
        } else {
            0.0
        };
        StrategyStats {
            strategy,
            min: lifetimes.iter().copied().min().unwrap_or(0),
            max: lifetimes.iter().copied().max().unwrap_or(0),
            mean,
            std: var.sqrt(),
            lifetimes,
            accuracies,
        }
    }

    /// Mean software accuracy across seeds.
    pub fn mean_accuracy(&self) -> f64 {
        if self.accuracies.is_empty() {
            0.0
        } else {
            self.accuracies.iter().sum::<f64>() / self.accuracies.len() as f64
        }
    }
}

/// The outcome of a multi-seed study over all three paper strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    /// Scenario name.
    pub scenario: String,
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// Per-strategy aggregates, in [`Strategy::ALL`] order.
    pub strategies: Vec<StrategyStats>,
}

impl StudyReport {
    /// Mean lifetimes normalized to the first (T+T) strategy.
    pub fn mean_ratios(&self) -> Vec<f64> {
        let base = self.strategies.first().map(|s| s.mean.max(1.0)).unwrap_or(1.0);
        self.strategies.iter().map(|s| s.mean / base).collect()
    }

    /// The fraction of seeds on which strategy `i` outlived strategy `j`
    /// (ties count as half) — a robust win-rate alternative to mean ratios.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn win_rate(&self, i: usize, j: usize) -> f64 {
        let a = &self.strategies[i].lifetimes;
        let b = &self.strategies[j].lifetimes;
        assert_eq!(a.len(), b.len(), "strategies ran on the same seeds");
        if a.is_empty() {
            return 0.5;
        }
        let score: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| {
                use std::cmp::Ordering::*;
                match x.cmp(y) {
                    Greater => 1.0,
                    Equal => 0.5,
                    Less => 0.0,
                }
            })
            .sum();
        score / a.len() as f64
    }
}

/// Runs every strategy of `scenario` on each seed and aggregates.
///
/// # Errors
///
/// Propagates framework errors; a failed seed aborts the study (the seeds
/// are part of the experiment definition, not best-effort trials).
pub fn run_study(scenario: &Scenario, seeds: &[u64]) -> Result<StudyReport, FrameworkError> {
    // Seeds are independent experiments (each worker runs its own scenario
    // clone with its own RNG streams), so they evaluate in parallel. Results
    // are merged in seed order and the first error in seed order wins, so
    // the report is identical at any thread count.
    let per_seed = memaging_par::par_map_collect(seeds.len(), |si| {
        let mut s = scenario.clone();
        s.seed = seeds[si];
        s.framework.lifetime.seed = seeds[si];
        Strategy::ALL
            .iter()
            .map(|&strategy| {
                let outcome = s.run_strategy(strategy)?;
                Ok((outcome.lifetime.lifetime_applications, outcome.software_accuracy))
            })
            .collect::<Result<Vec<_>, FrameworkError>>()
    });
    let mut lifetimes: Vec<Vec<u64>> = vec![Vec::new(); Strategy::ALL.len()];
    let mut accuracies: Vec<Vec<f64>> = vec![Vec::new(); Strategy::ALL.len()];
    for seed_runs in per_seed {
        for (i, (lifetime, accuracy)) in seed_runs?.into_iter().enumerate() {
            lifetimes[i].push(lifetime);
            accuracies[i].push(accuracy);
        }
    }
    let strategies = Strategy::ALL
        .iter()
        .zip(lifetimes.into_iter().zip(accuracies))
        .map(|(&s, (l, a))| StrategyStats::from_runs(s, l, a))
        .collect();
    Ok(StudyReport { scenario: scenario.name.clone(), seeds: seeds.to_vec(), strategies })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(strategy: Strategy, lifetimes: Vec<u64>) -> StrategyStats {
        StrategyStats::from_runs(strategy, lifetimes, vec![0.9])
    }

    #[test]
    fn stats_aggregate_correctly() {
        let s = stats(Strategy::TT, vec![10, 20, 30]);
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.std - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_seed_has_zero_std() {
        let s = stats(Strategy::TT, vec![42]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn ratios_and_win_rates() {
        let report = StudyReport {
            scenario: "x".into(),
            seeds: vec![1, 2, 3],
            strategies: vec![
                stats(Strategy::TT, vec![10, 10, 10]),
                stats(Strategy::StT, vec![20, 10, 30]),
                stats(Strategy::StAt, vec![20, 40, 30]),
            ],
        };
        let ratios = report.mean_ratios();
        assert!((ratios[0] - 1.0).abs() < 1e-12);
        assert!((ratios[1] - 2.0).abs() < 1e-12);
        assert!((ratios[2] - 3.0).abs() < 1e-12);
        // ST+T beats T+T on 2 of 3 seeds, ties 1 => 2.5/3.
        assert!((report.win_rate(1, 0) - 2.5 / 3.0).abs() < 1e-12);
        assert_eq!(report.win_rate(0, 0), 0.5);
    }

    #[test]
    fn quick_study_runs_end_to_end() {
        let mut scenario = crate::Scenario::quick();
        scenario.framework.lifetime.max_sessions = 2;
        scenario.framework.plan.pre_epochs = 4;
        scenario.framework.plan.skew_epochs = 3;
        let report = run_study(&scenario, &[5]).unwrap();
        assert_eq!(report.strategies.len(), 3);
        assert_eq!(report.seeds, vec![5]);
        assert!(report.strategies.iter().all(|s| s.lifetimes.len() == 1));
    }
}
