//! Declarative model selection for experiments and examples.

use memaging_nn::{models, Network, NnError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A network architecture the framework can instantiate.
///
/// The full-size [`ModelKind::Lenet5`] and [`ModelKind::Vgg16`] match the
/// paper's evaluation networks structurally; the `*Scaled` variants keep the
/// same layer topology at simulation-budget width (see `DESIGN.md` §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelKind {
    /// A ReLU MLP with the given `[in, hidden..., out]` dimensions.
    Mlp(Vec<usize>),
    /// Full LeNet-5 for `channels × 32 × 32` inputs.
    Lenet5 {
        /// Input channels.
        channels: usize,
        /// Output classes.
        classes: usize,
    },
    /// Scaled LeNet-5 for `channels × 12 × 12` inputs.
    Lenet5Scaled {
        /// Input channels.
        channels: usize,
        /// Output classes.
        classes: usize,
    },
    /// Full VGG-16 for `channels × 32 × 32` inputs.
    Vgg16 {
        /// Input channels.
        channels: usize,
        /// Output classes.
        classes: usize,
    },
    /// Scaled VGG-16 for `channels × 16 × 16` inputs.
    Vgg16Scaled {
        /// Input channels.
        channels: usize,
        /// Output classes.
        classes: usize,
    },
}

impl ModelKind {
    /// Instantiates the architecture with weights drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors.
    pub fn build(&self, seed: u64) -> Result<Network, NnError> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            ModelKind::Mlp(dims) => models::mlp(dims, &mut rng),
            ModelKind::Lenet5 { channels, classes } => {
                models::lenet5(*channels, *classes, &mut rng)
            }
            ModelKind::Lenet5Scaled { channels, classes } => {
                models::lenet5_scaled(*channels, *classes, &mut rng)
            }
            ModelKind::Vgg16 { channels, classes } => models::vgg16(*channels, *classes, &mut rng),
            ModelKind::Vgg16Scaled { channels, classes } => {
                models::vgg16_scaled(*channels, *classes, &mut rng)
            }
        }
    }

    /// A short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mlp(_) => "MLP",
            ModelKind::Lenet5 { .. } => "LeNet-5",
            ModelKind::Lenet5Scaled { .. } => "LeNet-5 (scaled)",
            ModelKind::Vgg16 { .. } => "VGG-16",
            ModelKind::Vgg16Scaled { .. } => "VGG-16 (scaled)",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_are_seed_deterministic() {
        let kind = ModelKind::Mlp(vec![8, 4, 2]);
        let a = kind.build(7).unwrap();
        let b = kind.build(7).unwrap();
        assert_eq!(a.weight_matrices(), b.weight_matrices());
        let c = kind.build(8).unwrap();
        assert_ne!(a.weight_matrices(), c.weight_matrices());
    }

    #[test]
    fn all_kinds_build() {
        for kind in [
            ModelKind::Mlp(vec![16, 8, 4]),
            ModelKind::Lenet5Scaled { channels: 1, classes: 10 },
            ModelKind::Vgg16Scaled { channels: 1, classes: 100 },
        ] {
            let net = kind.build(1).unwrap();
            assert!(net.num_layers() > 0, "{kind} failed to build");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            ModelKind::Lenet5Scaled { channels: 1, classes: 10 }.to_string(),
            "LeNet-5 (scaled)"
        );
        assert_eq!(ModelKind::Vgg16 { channels: 3, classes: 100 }.name(), "VGG-16");
    }
}
