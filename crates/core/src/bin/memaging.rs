//! `memaging` — command-line front end for the co-optimization framework.
//!
//! ```text
//! memaging scenario quick --strategy all            # run a lifetime study
//! memaging scenario lenet --strategy stat --seed 3
//! memaging scenario quick --trace run.jsonl --metrics  # structured tracing
//! memaging scenario quick --trace-chrome run.trace.json  # Perfetto timeline
//! memaging serve quick --port 9464                  # scrapeable monitoring
//! memaging device                                   # single-cell aging trace
//! memaging info                                     # scenario inventory
//! ```
//!
//! Arguments are deliberately minimal (no CLI dependency): a subcommand,
//! then `--key value` pairs.

use std::sync::Arc;
use std::time::Duration;

use memaging::crossbar::CrossbarNetwork;
use memaging::device::{ArrheniusAging, DeviceSpec, Memristor};
use memaging::fleet::{FleetConfig, FleetHandler, FleetService, RouterPolicy};
use memaging::lifetime::{compare_lifetimes, LifetimeResult, Strategy};
use memaging::obs::{
    ChromeTraceSink, FlightRecorder, JsonlSink, PrettySink, Recorder, SeriesStore, Sink,
    DEFAULT_FLIGHT_CAPACITY, DEFAULT_SERIES_CAPACITY,
};
use memaging::serve::{InferRequest, InferenceService, ServeConfig, ServeHandler};
use memaging::{AnalyzeOptions, Scenario};
use memaging_monitor::{MonitorServer, MonitorSink, MonitorState, RunStatus};

/// Parsed command-line request.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Scenario { name: String, opts: RunOpts },
    Serve { name: String, opts: RunOpts, flags: ServeFlags },
    Analyze { paths: Vec<String>, flags: AnalyzeFlags },
    Device,
    Info,
    Help,
}

/// Flags of the `analyze` subcommand.
#[derive(Debug, Clone, PartialEq)]
struct AnalyzeFlags {
    /// Print the machine-readable JSON document instead of the text report.
    json: bool,
    /// Relative tolerance of the two-run regression diff.
    tolerance: f64,
    /// Replay knobs (histogram buckets, series capacity, forecast window).
    options: AnalyzeOptions,
}

impl Default for AnalyzeFlags {
    fn default() -> Self {
        AnalyzeFlags { json: false, tolerance: 0.05, options: AnalyzeOptions::default() }
    }
}

/// Flags specific to the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
struct ServeFlags {
    port: u16,
    linger: bool,
    /// Deploy a trained model behind `POST /infer` instead of running the
    /// lifetime study.
    infer: bool,
    /// With `--infer`: drive this many self-generated requests through the
    /// service before reporting (0: serve until ctrl-c).
    requests: u64,
    /// With `--infer`: per-request deadline attached to HTTP submissions.
    deadline_ms: Option<u64>,
    /// With `--infer`: power-of-2 buckets per serving latency histogram
    /// ([`ServeConfig::latency_buckets`]).
    latency_buckets: Option<usize>,
    /// With `--infer`: deploy this many independent replicas behind the
    /// wear-balancing fleet router instead of a single serving cell.
    replicas: usize,
    /// With `--infer --replicas N`: the fleet routing policy.
    router: RouterPolicy,
}

impl Default for ServeFlags {
    fn default() -> Self {
        ServeFlags {
            port: DEFAULT_PORT,
            linger: false,
            infer: false,
            requests: 0,
            deadline_ms: None,
            latency_buckets: None,
            replicas: 1,
            router: RouterPolicy::WearBalance,
        }
    }
}

/// Options shared by `scenario` and `serve`.
#[derive(Debug, Clone, PartialEq)]
struct RunOpts {
    strategy: StrategyArg,
    seed: Option<u64>,
    sessions: Option<usize>,
    threads: Option<usize>,
    trace: Option<String>,
    trace_chrome: Option<String>,
    /// Flight-recorder dump path: a fixed-size ring of recent events,
    /// flushed to JSONL when a wear alert or live remap fires.
    flight: Option<String>,
    metrics: bool,
    /// Ring capacity of the deterministic wear time-series store
    /// (`GET /timeseries`); `None` uses [`DEFAULT_SERIES_CAPACITY`].
    series_capacity: Option<usize>,
    /// Disable series retention entirely: no store is attached, and the
    /// serve tier's per-boundary series path is allocation-free.
    no_series: bool,
    /// Fixed-point inference kernels: the lifetime study scores remap
    /// candidates with integer accumulation
    /// ([`memaging::lifetime::LifetimeConfig::quantized_eval`]) and the
    /// inference service forwards requests through the quantized path
    /// ([`ServeConfig::quantized`]). Bit-identical at any thread count.
    quantized: bool,
    /// Delta programming on every (re-)map: only cells whose target level
    /// changed are written (`--delta-remap on|off`, default on). Bitwise
    /// identical to full reprogramming at zero tolerance; `off` keeps the
    /// full-reprogram oracle.
    delta_remap: bool,
    /// Delta-remap tuning tolerance in grid levels (`--remap-tolerance`,
    /// `[0, 0.5]`): drift within this distance of the target level is left
    /// in place instead of being chased with stressful pulses.
    remap_tolerance: f64,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            strategy: StrategyArg::All,
            seed: None,
            sessions: None,
            threads: None,
            trace: None,
            trace_chrome: None,
            flight: None,
            metrics: false,
            series_capacity: None,
            no_series: false,
            quantized: false,
            delta_remap: true,
            remap_tolerance: 0.0,
        }
    }
}

impl RunOpts {
    /// The series-store capacity to attach, or `None` for `--no-series`.
    fn series(&self) -> Option<usize> {
        if self.no_series {
            None
        } else {
            Some(self.series_capacity.unwrap_or(DEFAULT_SERIES_CAPACITY))
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StrategyArg {
    One(Strategy),
    All,
}

fn parse_strategy(s: &str) -> Result<StrategyArg, String> {
    match s.to_ascii_lowercase().as_str() {
        "tt" | "t+t" => Ok(StrategyArg::One(Strategy::TT)),
        "stt" | "st+t" => Ok(StrategyArg::One(Strategy::StT)),
        "stat" | "st+at" => Ok(StrategyArg::One(Strategy::StAt)),
        "all" => Ok(StrategyArg::All),
        other => Err(format!("unknown strategy `{other}` (expected tt|stt|stat|all)")),
    }
}

fn parse_scenario_name(it: &mut std::slice::Iter<'_, String>, sub: &str) -> Result<String, String> {
    let name = it.next().ok_or(format!("{sub} needs a name: quick|lenet|vgg"))?.to_string();
    if !["quick", "lenet", "vgg"].contains(&name.as_str()) {
        return Err(format!("unknown scenario `{name}` (expected quick|lenet|vgg)"));
    }
    Ok(name)
}

/// Parses the flags shared by `scenario` and `serve` (plus the
/// [`ServeFlags`] when `serve` is set).
fn parse_run_opts(
    it: &mut std::slice::Iter<'_, String>,
    serve: bool,
) -> Result<(RunOpts, ServeFlags), String> {
    let mut opts = RunOpts::default();
    if serve {
        // A monitored deployment serves one strategy; default to the
        // paper's proposed ST+AT.
        opts.strategy = StrategyArg::One(Strategy::StAt);
    }
    let mut flags = ServeFlags::default();
    while let Some(flag) = it.next() {
        // `--metrics`, `--linger` and `--infer` are bare switches; every
        // other known flag takes a value. Reject unknown flags before
        // demanding one so a typo reports "unknown flag", not "needs a
        // value".
        if flag == "--metrics" {
            opts.metrics = true;
            continue;
        }
        if serve && flag == "--linger" {
            flags.linger = true;
            continue;
        }
        if serve && flag == "--infer" {
            flags.infer = true;
            continue;
        }
        if flag == "--no-series" {
            opts.no_series = true;
            continue;
        }
        if flag == "--quantized" {
            opts.quantized = true;
            continue;
        }
        let known = [
            "--strategy",
            "--seed",
            "--sessions",
            "--threads",
            "--trace",
            "--trace-chrome",
            "--flight-recorder",
            "--series-capacity",
            "--delta-remap",
            "--remap-tolerance",
        ];
        let known = known.contains(&flag.as_str())
            || (serve
                && [
                    "--port",
                    "--requests",
                    "--deadline-ms",
                    "--latency-buckets",
                    "--replicas",
                    "--router",
                ]
                .contains(&flag.as_str()));
        if !known {
            return Err(format!("unknown flag `{flag}`"));
        }
        let value = it.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--strategy" => opts.strategy = parse_strategy(value)?,
            "--seed" => {
                opts.seed = Some(value.parse().map_err(|_| format!("bad seed `{value}`"))?);
            }
            "--sessions" => {
                opts.sessions = Some(value.parse().map_err(|_| format!("bad sessions `{value}`"))?);
            }
            "--threads" => {
                let n: usize = value.parse().map_err(|_| format!("bad threads `{value}`"))?;
                if n == 0 {
                    return Err("bad threads `0` (must be at least 1)".into());
                }
                opts.threads = Some(n);
            }
            "--trace" => opts.trace = Some(value.to_string()),
            "--trace-chrome" => opts.trace_chrome = Some(value.to_string()),
            "--flight-recorder" => opts.flight = Some(value.to_string()),
            "--series-capacity" => {
                let n: usize =
                    value.parse().map_err(|_| format!("bad series-capacity `{value}`"))?;
                if n < 2 {
                    return Err(format!("bad series-capacity `{n}` (must be at least 2)"));
                }
                opts.series_capacity = Some(n);
            }
            "--delta-remap" => {
                opts.delta_remap = match value.to_ascii_lowercase().as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("bad delta-remap `{other}` (expected on|off)")),
                };
            }
            "--remap-tolerance" => {
                let t: f64 = value.parse().map_err(|_| format!("bad remap-tolerance `{value}`"))?;
                if !t.is_finite() || !(0.0..=0.5).contains(&t) {
                    return Err(format!("bad remap-tolerance `{t}` (must lie in [0, 0.5])"));
                }
                opts.remap_tolerance = t;
            }
            "--port" => {
                flags.port = value.parse().map_err(|_| format!("bad port `{value}`"))?;
            }
            "--requests" => {
                flags.requests = value.parse().map_err(|_| format!("bad requests `{value}`"))?;
            }
            "--deadline-ms" => {
                flags.deadline_ms =
                    Some(value.parse().map_err(|_| format!("bad deadline-ms `{value}`"))?);
            }
            "--latency-buckets" => {
                let n: usize =
                    value.parse().map_err(|_| format!("bad latency-buckets `{value}`"))?;
                if !(8..=64).contains(&n) {
                    return Err(format!("bad latency-buckets `{n}` (must lie in [8, 64])"));
                }
                flags.latency_buckets = Some(n);
            }
            "--replicas" => {
                let n: usize = value.parse().map_err(|_| format!("bad replicas `{value}`"))?;
                if n == 0 {
                    return Err("bad replicas `0` (must be at least 1)".into());
                }
                flags.replicas = n;
            }
            "--router" => flags.router = RouterPolicy::parse(value)?,
            _ => unreachable!("flag validated above"),
        }
    }
    if !flags.infer && (flags.requests != 0 || flags.deadline_ms.is_some()) {
        return Err("--requests / --deadline-ms require --infer".into());
    }
    if !flags.infer && flags.latency_buckets.is_some() {
        return Err("--latency-buckets requires --infer".into());
    }
    if !flags.infer && (flags.replicas != 1 || flags.router != RouterPolicy::WearBalance) {
        return Err("--replicas / --router require --infer".into());
    }
    if opts.no_series && opts.series_capacity.is_some() {
        return Err("--series-capacity conflicts with --no-series".into());
    }
    Ok((opts, flags))
}

/// Parses `analyze <trace.jsonl> [baseline.jsonl] [flags]`.
fn parse_analyze(it: &mut std::slice::Iter<'_, String>) -> Result<Command, String> {
    let mut paths = Vec::new();
    let mut flags = AnalyzeFlags::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => flags.json = true,
            "--latency-buckets" | "--series-capacity" | "--forecast-window" | "--tolerance" => {
                let value = it.next().ok_or_else(|| format!("flag {arg} needs a value"))?;
                match arg.as_str() {
                    "--latency-buckets" => {
                        let n: usize =
                            value.parse().map_err(|_| format!("bad latency-buckets `{value}`"))?;
                        if !(8..=64).contains(&n) {
                            return Err(format!("bad latency-buckets `{n}` (must lie in [8, 64])"));
                        }
                        flags.options.latency_buckets = n;
                    }
                    "--series-capacity" => {
                        let n: usize =
                            value.parse().map_err(|_| format!("bad series-capacity `{value}`"))?;
                        if n < 2 {
                            return Err(format!("bad series-capacity `{n}` (must be at least 2)"));
                        }
                        flags.options.series_capacity = n;
                    }
                    "--forecast-window" => {
                        let n: usize =
                            value.parse().map_err(|_| format!("bad forecast-window `{value}`"))?;
                        if n < 2 {
                            return Err(format!("bad forecast-window `{n}` (must be at least 2)"));
                        }
                        flags.options.forecast_window = n;
                    }
                    "--tolerance" => {
                        let t: f64 =
                            value.parse().map_err(|_| format!("bad tolerance `{value}`"))?;
                        if !t.is_finite() || t < 0.0 {
                            return Err(format!("bad tolerance `{t}` (must be >= 0)"));
                        }
                        flags.tolerance = t;
                    }
                    _ => unreachable!("flag matched above"),
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => paths.push(path.to_string()),
        }
    }
    match paths.len() {
        1 | 2 => Ok(Command::Analyze { paths, flags }),
        0 => Err("analyze needs a trace: memaging analyze <trace.jsonl> [baseline.jsonl]".into()),
        n => Err(format!("analyze takes one trace (report) or two (diff), got {n}")),
    }
}

/// Default `serve` port (the Prometheus unallocated-exporter range).
const DEFAULT_PORT: u16 = 9464;

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "device" => Ok(Command::Device),
        "info" => Ok(Command::Info),
        "scenario" => {
            let name = parse_scenario_name(&mut it, "scenario")?;
            let (opts, _) = parse_run_opts(&mut it, false)?;
            Ok(Command::Scenario { name, opts })
        }
        "serve" => {
            let name = parse_scenario_name(&mut it, "serve")?;
            let (opts, flags) = parse_run_opts(&mut it, true)?;
            Ok(Command::Serve { name, opts, flags })
        }
        "analyze" => parse_analyze(&mut it),
        other => Err(format!("unknown command `{other}`; try `memaging help`")),
    }
}

fn print_help() {
    println!(
        "memaging — aging-aware lifetime enhancement for memristor crossbars (DATE'19)\n\n\
         USAGE:\n\
         \u{20}   memaging scenario <quick|lenet|vgg> [--strategy tt|stt|stat|all]\n\
         \u{20}                                       [--seed N] [--sessions N] [--threads N]\n\
         \u{20}                                       [--quantized] [--trace out.jsonl]\n\
         \u{20}                                       [--trace-chrome out.json] [--metrics]\n\
         \u{20}                                       [--flight-recorder out.jsonl]\n\
         \u{20}                                       [--delta-remap on|off (default on)]\n\
         \u{20}                                       [--remap-tolerance F (0..=0.5, default 0)]\n\
         \u{20}                       --threads N sizes the worker pool (default:\n\
         \u{20}                       MEMAGING_THREADS, then available cores); results\n\
         \u{20}                       are bit-identical at any thread count\n\
         \u{20}                       --trace writes one JSON event per line (spans,\n\
         \u{20}                       counters, gauges); --trace-chrome writes a\n\
         \u{20}                       chrome://tracing / Perfetto timeline; --metrics\n\
         \u{20}                       prints a metrics summary after the run;\n\
         \u{20}                       --flight-recorder keeps a ring of recent events\n\
         \u{20}                       and dumps it to JSONL when an alert or live\n\
         \u{20}                       remap fires; --quantized scores remap candidates\n\
         \u{20}                       (and, with --infer, serves requests) on the\n\
         \u{20}                       fixed-point kernels — bit-identical at any\n\
         \u{20}                       thread count, f32 stays the accuracy oracle;\n\
         \u{20}                       --delta-remap programs only cells whose target\n\
         \u{20}                       level changed (default on; off = full-reprogram\n\
         \u{20}                       oracle, bit-identical at tolerance 0);\n\
         \u{20}                       --remap-tolerance leaves drift within F grid\n\
         \u{20}                       levels of the target in place, trading exactness\n\
         \u{20}                       for pulse savings\n\
         \u{20}   memaging serve <quick|lenet|vgg>    [--port N (default 9464)] [--linger]\n\
         \u{20}                                       [--strategy tt|stt|stat|all] [--quantized]\n\
         \u{20}                                       [--seed N] [--sessions N] [--threads N]\n\
         \u{20}                                       [--trace out.jsonl]\n\
         \u{20}                                       [--trace-chrome out.json] [--metrics]\n\
         \u{20}                                       [--flight-recorder out.jsonl]\n\
         \u{20}                       runs the scenario while serving GET /metrics\n\
         \u{20}                       (Prometheus text format), /health and /wear\n\
         \u{20}                       (per-tile wear JSON) on 127.0.0.1; --linger keeps\n\
         \u{20}                       serving after the run finishes\n\
         \u{20}   memaging serve <quick|lenet|vgg> --infer\n\
         \u{20}                                       [--requests N] [--deadline-ms N]\n\
         \u{20}                                       [--latency-buckets N (8..=64)]\n\
         \u{20}                                       [--replicas N (default 1)]\n\
         \u{20}                                       [--router wear|round-robin|sticky]\n\
         \u{20}                       trains the strategy's model and deploys it behind\n\
         \u{20}                       the batched inference service: POST /infer,\n\
         \u{20}                       GET /serve/stats, /serve/latency (log-bucketed\n\
         \u{20}                       latency histograms) and /wear/attribution (the\n\
         \u{20}                       per-cause wear ledger), with admission control\n\
         \u{20}                       and aging-aware live remapping; --requests N\n\
         \u{20}                       drives a deterministic self-load then reports (0:\n\
         \u{20}                       serve until ctrl-c); --deadline-ms bounds HTTP\n\
         \u{20}                       requests; --series-capacity N sizes the\n\
         \u{20}                       deterministic wear time-series ring behind\n\
         \u{20}                       GET /timeseries and /forecast (default 64);\n\
         \u{20}                       --no-series disables series retention (the\n\
         \u{20}                       per-boundary series path is allocation-free);\n\
         \u{20}                       --replicas N shards the deployment into N\n\
         \u{20}                       independent crossbar replicas behind the\n\
         \u{20}                       deterministic wear-balancing fleet router\n\
         \u{20}                       (GET /fleet shows per-replica routing state);\n\
         \u{20}                       --router picks the policy: wear (default,\n\
         \u{20}                       least projected stress), round-robin, sticky\n\
         \u{20}   memaging analyze <trace.jsonl> [baseline.jsonl]\n\
         \u{20}                                       [--json] [--tolerance F (default 0.05)]\n\
         \u{20}                                       [--latency-buckets N (default 40)]\n\
         \u{20}                                       [--series-capacity N (default 64)]\n\
         \u{20}                                       [--forecast-window N (default 16)]\n\
         \u{20}                       replays a JSONL trace (from --trace or a flight\n\
         \u{20}                       dump) offline: per-phase self/total time, the\n\
         \u{20}                       exact /serve/latency and /wear/attribution\n\
         \u{20}                       bodies, per-tile wear trajectories and lifetime\n\
         \u{20}                       forecast; with two traces, diffs them into a\n\
         \u{20}                       regression table (exit 3 on regressions beyond\n\
         \u{20}                       --tolerance)\n\
         \u{20}   memaging device      single-cell aging trajectory (paper Fig. 4)\n\
         \u{20}   memaging info        list the calibrated scenarios\n\
         \u{20}   memaging help        this message\n"
    );
}

fn scenario_by_name(name: &str) -> Scenario {
    match name {
        "lenet" => Scenario::lenet(),
        "vgg" => Scenario::vgg(),
        _ => Scenario::quick(),
    }
}

fn configured_scenario(name: &str, opts: &RunOpts) -> Scenario {
    let mut scenario = scenario_by_name(name);
    if let Some(seed) = opts.seed {
        scenario.seed = seed;
        scenario.framework.lifetime.seed = seed;
    }
    if let Some(sessions) = opts.sessions {
        scenario.framework.lifetime.max_sessions = sessions;
    }
    scenario.framework.lifetime.quantized_eval = opts.quantized;
    scenario.framework.lifetime.delta_remap = opts.delta_remap;
    scenario.framework.lifetime.remap_tolerance = opts.remap_tolerance;
    scenario
}

/// Build the CLI recorder: a pretty sink for progress lines, a JSONL sink
/// when `--trace` was given, a Chrome trace-event sink when
/// `--trace-chrome` was given, a flight recorder when `--flight-recorder`
/// was given, plus any caller-provided sink (the monitor's wear-state
/// feed). A [`SeriesStore`] of `series` capacity is attached unless the
/// user passed `--no-series` (`series: None`) — with no store attached the
/// serve tier's per-boundary series path is allocation-free. Fails cleanly
/// on an unwritable trace path.
fn build_recorder(
    trace: Option<&str>,
    trace_chrome: Option<&str>,
    flight: Option<&str>,
    series: Option<usize>,
    extra: Option<Box<dyn Sink>>,
) -> Result<Recorder, String> {
    let mut sinks: Vec<Box<dyn Sink>> = vec![Box::new(PrettySink::new())];
    if let Some(path) = trace {
        let jsonl =
            JsonlSink::create(path).map_err(|e| format!("cannot open trace file `{path}`: {e}"))?;
        sinks.push(Box::new(jsonl));
    }
    if let Some(path) = trace_chrome {
        let chrome = ChromeTraceSink::create(path)
            .map_err(|e| format!("cannot open chrome trace file `{path}`: {e}"))?;
        sinks.push(Box::new(chrome));
    }
    if let Some(path) = flight {
        let recorder = FlightRecorder::create(path, DEFAULT_FLIGHT_CAPACITY)
            .map_err(|e| format!("cannot open flight-recorder file `{path}`: {e}"))?;
        sinks.push(Box::new(recorder));
    }
    if let Some(sink) = extra {
        sinks.push(sink);
    }
    match series {
        Some(capacity) => {
            Ok(Recorder::with_series(sinks, Arc::new(SeriesStore::with_capacity(capacity))))
        }
        None => Ok(Recorder::new(sinks)),
    }
}

/// Runs the selected strategies, logging per-strategy summaries and the
/// lifetime-ratio comparison through the recorder. Returns the lifetimes.
fn run_strategies(
    scenario: &Scenario,
    strategy: StrategyArg,
    recorder: &Recorder,
) -> Result<Vec<LifetimeResult>, String> {
    let strategies: Vec<Strategy> = match strategy {
        StrategyArg::One(s) => vec![s],
        StrategyArg::All => Strategy::ALL.to_vec(),
    };
    let mut results = Vec::new();
    for s in &strategies {
        let outcome = scenario.run_strategy(*s).map_err(|e| e.to_string())?;
        recorder.message(&format!(
            "{:>6}: software acc {:.1}%, {} sessions, {} applications (failed: {})",
            s.label(),
            100.0 * outcome.software_accuracy,
            outcome.lifetime.sessions.len(),
            outcome.lifetime.lifetime_applications,
            outcome.lifetime.failed,
        ));
        results.push(outcome.lifetime);
    }
    if results.len() > 1 {
        let cmp = compare_lifetimes(&results);
        let mut line = String::from("lifetime ratios:");
        for ((s, _), r) in cmp.entries.iter().zip(&cmp.ratios) {
            line.push_str(&format!("  {}={:.1}x", s.label(), r));
        }
        recorder.message(&line);
    }
    Ok(results)
}

/// Applies `--threads` to the process-wide worker pool. Without the flag
/// the `MEMAGING_THREADS` environment variable (then the machine's
/// available parallelism) decides.
fn apply_threads(opts: &RunOpts) {
    if let Some(n) = opts.threads {
        memaging::par::set_threads(n);
    }
}

fn run_scenario(name: &str, opts: &RunOpts) -> Result<(), Box<dyn std::error::Error>> {
    apply_threads(opts);
    let mut scenario = configured_scenario(name, opts);
    let recorder = build_recorder(
        opts.trace.as_deref(),
        opts.trace_chrome.as_deref(),
        opts.flight.as_deref(),
        opts.series(),
        None,
    )?;
    // The pipeline recorder is only attached when the user opted into
    // observability, so the default CLI output is unchanged.
    if opts.trace.is_some() || opts.trace_chrome.is_some() || opts.metrics {
        scenario.framework.recorder = recorder.clone();
    }
    recorder.message(&format!("scenario: {}", scenario.name));
    run_strategies(&scenario, opts.strategy, &recorder)?;
    if opts.metrics {
        if let Some(snapshot) = recorder.snapshot() {
            print!("{snapshot}");
        }
    }
    recorder.flush();
    Ok(())
}

/// `memaging serve --infer`: train the selected strategy's model, deploy it
/// behind the batched inference service (admission control + aging-aware
/// live remapping), and expose `POST /infer` / `GET /serve/stats` next to
/// the monitor's scrape endpoints.
fn run_infer(
    name: &str,
    opts: &RunOpts,
    flags: &ServeFlags,
) -> Result<(), Box<dyn std::error::Error>> {
    apply_threads(opts);
    let StrategyArg::One(strategy) = opts.strategy else {
        return Err("serve --infer deploys one strategy; pick --strategy tt|stt|stat".into());
    };
    let scenario = configured_scenario(name, opts);
    let (sink, wear) = MonitorSink::new();
    let recorder = build_recorder(
        opts.trace.as_deref(),
        opts.trace_chrome.as_deref(),
        opts.flight.as_deref(),
        opts.series(),
        Some(Box::new(sink)),
    )?;
    let mut framework = scenario.framework.clone();
    framework.recorder = recorder.clone();
    recorder.message(&format!("training {} ({}) for serving", scenario.name, strategy.label()));
    let data = scenario.dataset()?;
    let (train, calib) = scenario.train_calib_split(&data)?;
    let trained = framework.train_model(&train, strategy, scenario.seed)?;
    recorder.message(&format!("software accuracy {:.1}%", 100.0 * trained.software_accuracy));
    // Read-disturb calibration for the demo deployment: ~50k inference
    // reads cost 30% of the fresh resistance window, so a sustained load
    // visibly ages the crossbars (and eventually triggers a live remap)
    // without wearing them out within a short session.
    let width = framework.spec.r_max - framework.spec.r_min;
    let mut config = ServeConfig {
        stress_per_read: framework
            .aging
            .stress_for_degradation(framework.spec.temperature, 0.3 * width)
            / 50_000.0,
        quantized: opts.quantized,
        delta_remap: opts.delta_remap,
        remap_tolerance: opts.remap_tolerance,
        ..ServeConfig::default()
    };
    if let Some(buckets) = flags.latency_buckets {
        config.latency_buckets = buckets;
    }

    if flags.replicas > 1 {
        // Sharded deployment: N independent crossbar replicas behind the
        // deterministic wear-balancing fleet router.
        let networks = (0..flags.replicas)
            .map(|_| CrossbarNetwork::new(trained.network.clone(), framework.spec, framework.aging))
            .collect::<Result<Vec<_>, _>>()?;
        let fleet_config =
            FleetConfig { router: flags.router, ..FleetConfig::new(flags.replicas, config) };
        let service = Arc::new(FleetService::deploy(
            networks,
            calib.clone(),
            fleet_config,
            recorder.clone(),
        )?);
        let handler = Arc::new(FleetHandler::new(
            Arc::clone(&service),
            flags.deadline_ms.map(Duration::from_millis),
        ));
        let server = MonitorServer::bind_with_handlers(
            ("127.0.0.1", flags.port),
            MonitorState::new(recorder.clone(), wear.clone()),
            vec![handler],
        )
        .map_err(|e| format!("cannot bind monitor port {}: {e}", flags.port))?;
        let addr = server.local_addr();
        println!(
            "serving {} replicas ({} router): POST http://{addr}/infer  GET /fleet  \
             /serve/stats  /serve/latency  /wear/attribution  /metrics  /health  /wear",
            flags.replicas,
            flags.router.label(),
        );
        if flags.requests > 0 {
            // Deterministic self-driven smoke load from the calibration set.
            let mut served = 0u64;
            let mut failed = 0u64;
            for k in 0..flags.requests {
                let i = (k as usize) % calib.len();
                let input = calib.batch_matrix(i, i + 1).as_slice().to_vec();
                match service.infer(InferRequest::new(input)) {
                    Ok(_) => served += 1,
                    Err(_) => failed += 1,
                }
            }
            recorder.message(&format!(
                "self-load complete: {served} served, {failed} failed; fleet: {}",
                service.fleet_json()
            ));
        }
        if flags.requests == 0 || flags.linger {
            println!("fleet inference service live (ctrl-c to exit)");
            loop {
                std::thread::park();
            }
        }
        server.shutdown();
        wear.set_status(RunStatus::Survived);
        if let Ok(service) = Arc::try_unwrap(service) {
            let report = service.shutdown();
            recorder.message(&format!(
                "fleet report: {} admitted, {} served, {} rejected, {} replicas, \
                 wear imbalance (max/mean) {:.4}",
                report.admitted,
                report.served(),
                report.rejected_full,
                report.replicas.len(),
                report.wear_imbalance(),
            ));
            for r in &report.replicas {
                recorder.message(&format!(
                    "  replica {}: {} routed, {} served, {} boundaries, {} remaps, {} retires",
                    r.replica, r.routed, r.served, r.boundaries, r.remaps, r.retires
                ));
            }
        }
        if opts.metrics {
            if let Some(snapshot) = recorder.snapshot() {
                print!("{snapshot}");
            }
        }
        recorder.flush();
        return Ok(());
    }

    let hardware = CrossbarNetwork::new(trained.network, framework.spec, framework.aging)?;
    let service =
        Arc::new(InferenceService::deploy(hardware, calib.clone(), config, recorder.clone())?);
    let handler = Arc::new(ServeHandler::new(
        Arc::clone(&service),
        flags.deadline_ms.map(Duration::from_millis),
    ));
    let server = MonitorServer::bind_with_handlers(
        ("127.0.0.1", flags.port),
        MonitorState::new(recorder.clone(), wear.clone()),
        vec![handler],
    )
    .map_err(|e| format!("cannot bind monitor port {}: {e}", flags.port))?;
    let addr = server.local_addr();
    println!(
        "serving: POST http://{addr}/infer  GET /serve/stats  /serve/latency  \
         /wear/attribution  /metrics  /health  /wear"
    );

    if flags.requests > 0 {
        // Deterministic self-driven smoke load from the calibration set.
        let mut served = 0u64;
        let mut failed = 0u64;
        for k in 0..flags.requests {
            let i = (k as usize) % calib.len();
            let input = calib.batch_matrix(i, i + 1).as_slice().to_vec();
            match service.infer(InferRequest::new(input)) {
                Ok(_) => served += 1,
                Err(_) => failed += 1,
            }
        }
        recorder.message(&format!(
            "self-load complete: {served} served, {failed} failed; stats: {}",
            service.stats().to_json()
        ));
    }
    if flags.requests == 0 || flags.linger {
        println!("inference service live (ctrl-c to exit)");
        loop {
            std::thread::park();
        }
    }
    server.shutdown();
    wear.set_status(RunStatus::Survived);
    if let Ok(service) = Arc::try_unwrap(service) {
        let report = service.shutdown();
        recorder.message(&format!(
            "serve report: {} admitted, {} served, {} rejected, {} expired, {} boundaries, \
             {} remaps, {:.3e}s stress attributed",
            report.admitted,
            report.served,
            report.rejected_full,
            report.expired,
            report.boundaries,
            report.remaps,
            report.attribution.total(),
        ));
    }
    if opts.metrics {
        if let Some(snapshot) = recorder.snapshot() {
            print!("{snapshot}");
        }
    }
    recorder.flush();
    Ok(())
}

/// `memaging serve`: run the lifetime scenario on a worker thread while the
/// monitoring endpoint answers scrapes on the main thread's behalf.
fn run_serve(
    name: &str,
    opts: &RunOpts,
    flags: &ServeFlags,
) -> Result<(), Box<dyn std::error::Error>> {
    if flags.infer {
        return run_infer(name, opts, flags);
    }
    let (port, linger) = (flags.port, flags.linger);
    apply_threads(opts);
    let mut scenario = configured_scenario(name, opts);
    let (sink, wear) = MonitorSink::new();
    let recorder = build_recorder(
        opts.trace.as_deref(),
        opts.trace_chrome.as_deref(),
        opts.flight.as_deref(),
        opts.series(),
        Some(Box::new(sink)),
    )?;
    scenario.framework.recorder = recorder.clone();
    let server =
        MonitorServer::bind(("127.0.0.1", port), MonitorState::new(recorder.clone(), wear.clone()))
            .map_err(|e| format!("cannot bind monitor port {port}: {e}"))?;
    let addr = server.local_addr();
    println!("monitor: http://{addr}/metrics  /health  /wear");
    recorder.message(&format!("scenario: {}", scenario.name));
    let worker = {
        let recorder = recorder.clone();
        let strategy = opts.strategy;
        std::thread::spawn(move || -> Result<Vec<LifetimeResult>, String> {
            run_strategies(&scenario, strategy, &recorder)
        })
    };
    // The monitor server answers scrapes from its own thread while we wait.
    let outcome = worker.join().map_err(|_| "lifetime worker panicked")?;
    match &outcome {
        Ok(results) => {
            let any_failed = results.iter().any(|r| r.failed);
            wear.set_status(if any_failed { RunStatus::Failed } else { RunStatus::Survived });
        }
        Err(_) => wear.set_status(RunStatus::Error),
    }
    if opts.metrics {
        if let Some(snapshot) = recorder.snapshot() {
            print!("{snapshot}");
        }
    }
    recorder.flush();
    if linger && outcome.is_ok() {
        println!("run complete; monitor still serving on http://{addr} (ctrl-c to exit)");
        loop {
            std::thread::park();
        }
    }
    server.shutdown();
    outcome?;
    Ok(())
}

/// `memaging analyze`: replay one trace into a report, or two into a
/// regression diff. Returns the number of regressions beyond tolerance
/// (always 0 for a single-trace report).
fn run_analyze(paths: &[String], flags: &AnalyzeFlags) -> Result<usize, String> {
    let analyses: Vec<memaging::TraceAnalysis> = paths
        .iter()
        .map(|path| memaging::analyze_file(path, &flags.options))
        .collect::<Result<_, _>>()?;
    if let [baseline, candidate] = &analyses[..] {
        let report = memaging::diff(baseline, candidate, flags.tolerance);
        if flags.json {
            println!("{}", report.to_json());
        } else {
            print!("{}", baseline.report());
            print!("{}", candidate.report());
            print!("{}", report.report());
        }
        Ok(report.regressions().len())
    } else {
        let analysis = &analyses[0];
        if flags.json {
            println!("{}", analysis.to_json());
        } else {
            print!("{}", analysis.report());
        }
        Ok(0)
    }
}

fn run_device() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DeviceSpec { levels: 8, ..DeviceSpec::default() };
    let mut cell = Memristor::new(spec, ArrheniusAging::default())?;
    println!("{:>10} {:>12} {:>12} {:>8}", "pulses", "R_min [kΩ]", "R_max [kΩ]", "levels");
    loop {
        let w = cell.aged_window();
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>8}",
            cell.pulse_count(),
            w.r_min / 1e3,
            w.r_max / 1e3,
            cell.usable_levels()
        );
        if cell.is_worn_out() {
            break;
        }
        for _ in 0..1000 {
            if cell.program_to_level(0).is_err() || cell.program_to_level(7).is_err() {
                break;
            }
        }
    }
    Ok(())
}

fn run_info() {
    for scenario in [Scenario::quick(), Scenario::lenet(), Scenario::vgg()] {
        println!("{}", scenario.name);
        println!("  model: {}", scenario.framework.model);
        println!(
            "  dataset: {} classes x {} samples, {}x{}x{}",
            scenario.data_spec.classes,
            scenario.data_spec.samples_per_class,
            scenario.data_spec.channels,
            scenario.data_spec.height,
            scenario.data_spec.width,
        );
        println!(
            "  lifetime: target {:.0}%, <= {} sessions, {} tuning iterations",
            100.0 * scenario.framework.lifetime.target_accuracy,
            scenario.framework.lifetime.max_sessions,
            scenario.framework.lifetime.max_tuning_iterations,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => print_help(),
        Ok(Command::Info) => run_info(),
        Ok(Command::Device) => {
            if let Err(e) = run_device() {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Ok(Command::Scenario { name, opts }) => {
            if let Err(e) = run_scenario(&name, &opts) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Ok(Command::Serve { name, opts, flags }) => {
            if let Err(e) = run_serve(&name, &opts, &flags) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Ok(Command::Analyze { paths, flags }) => match run_analyze(&paths, &flags) {
            Ok(0) => {}
            Ok(_) => std::process::exit(3),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}");
            print_help();
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_help_and_empty() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_scenario_with_flags() {
        let cmd =
            parse_args(&argv("scenario quick --strategy stat --seed 9 --sessions 5")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                opts: RunOpts {
                    strategy: StrategyArg::One(Strategy::StAt),
                    seed: Some(9),
                    sessions: Some(5),
                    ..RunOpts::default()
                },
            }
        );
    }

    #[test]
    fn parses_threads_flag() {
        let cmd = parse_args(&argv("scenario quick --threads 4")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                opts: RunOpts { threads: Some(4), ..RunOpts::default() },
            }
        );
        let err = parse_args(&argv("scenario quick --threads 0")).unwrap_err();
        assert!(err.contains("at least 1"), "got: {err}");
        assert!(parse_args(&argv("scenario quick --threads abc")).is_err());
        // `serve` accepts the flag too.
        assert!(parse_args(&argv("serve quick --threads 2")).is_ok());
    }

    #[test]
    fn parses_trace_and_metrics() {
        let cmd =
            parse_args(&argv("scenario quick --trace /tmp/run.jsonl --metrics --seed 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                opts: RunOpts {
                    seed: Some(3),
                    trace: Some("/tmp/run.jsonl".into()),
                    metrics: true,
                    ..RunOpts::default()
                },
            }
        );
    }

    #[test]
    fn parses_chrome_trace_flag() {
        let cmd = parse_args(&argv("scenario quick --trace-chrome /tmp/run.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                opts: RunOpts { trace_chrome: Some("/tmp/run.json".into()), ..RunOpts::default() },
            }
        );
    }

    #[test]
    fn parses_serve_with_defaults_and_flags() {
        let cmd = parse_args(&argv("serve quick")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                name: "quick".into(),
                opts: RunOpts { strategy: StrategyArg::One(Strategy::StAt), ..RunOpts::default() },
                flags: ServeFlags::default(),
            }
        );
        let cmd =
            parse_args(&argv("serve lenet --port 0 --linger --strategy tt --sessions 8")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                name: "lenet".into(),
                opts: RunOpts {
                    strategy: StrategyArg::One(Strategy::TT),
                    sessions: Some(8),
                    ..RunOpts::default()
                },
                flags: ServeFlags { port: 0, linger: true, ..ServeFlags::default() },
            }
        );
    }

    #[test]
    fn parses_infer_flags() {
        let cmd =
            parse_args(&argv("serve quick --infer --requests 128 --deadline-ms 250")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                name: "quick".into(),
                opts: RunOpts { strategy: StrategyArg::One(Strategy::StAt), ..RunOpts::default() },
                flags: ServeFlags {
                    infer: true,
                    requests: 128,
                    deadline_ms: Some(250),
                    ..ServeFlags::default()
                },
            }
        );
        // The load/deadline flags are meaningless without the service.
        let err = parse_args(&argv("serve quick --requests 5")).unwrap_err();
        assert!(err.contains("--infer"), "got: {err}");
        let err = parse_args(&argv("serve quick --deadline-ms 10")).unwrap_err();
        assert!(err.contains("--infer"), "got: {err}");
        // And they are serve-only.
        let err = parse_args(&argv("scenario quick --infer")).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
        assert!(parse_args(&argv("serve quick --infer --requests abc")).is_err());
    }

    #[test]
    fn parses_flight_recorder_flag() {
        let cmd = parse_args(&argv("scenario quick --flight-recorder /tmp/flight.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                opts: RunOpts { flight: Some("/tmp/flight.jsonl".into()), ..RunOpts::default() },
            }
        );
        // `serve` accepts it too (shared run option).
        assert!(parse_args(&argv("serve quick --flight-recorder /tmp/f.jsonl")).is_ok());
        assert!(parse_args(&argv("scenario quick --flight-recorder")).is_err());
    }

    #[test]
    fn parses_latency_buckets_flag() {
        let cmd = parse_args(&argv("serve quick --infer --latency-buckets 24")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                name: "quick".into(),
                opts: RunOpts { strategy: StrategyArg::One(Strategy::StAt), ..RunOpts::default() },
                flags: ServeFlags {
                    infer: true,
                    latency_buckets: Some(24),
                    ..ServeFlags::default()
                },
            }
        );
        let err = parse_args(&argv("serve quick --infer --latency-buckets 4")).unwrap_err();
        assert!(err.contains("[8, 64]"), "got: {err}");
        let err = parse_args(&argv("serve quick --latency-buckets 24")).unwrap_err();
        assert!(err.contains("--infer"), "got: {err}");
        let err = parse_args(&argv("scenario quick --latency-buckets 24")).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
    }

    #[test]
    fn parses_fleet_flags() {
        let cmd =
            parse_args(&argv("serve quick --infer --replicas 4 --router round-robin")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                name: "quick".into(),
                opts: RunOpts { strategy: StrategyArg::One(Strategy::StAt), ..RunOpts::default() },
                flags: ServeFlags {
                    infer: true,
                    replicas: 4,
                    router: RouterPolicy::RoundRobin,
                    ..ServeFlags::default()
                },
            }
        );
        // `wear-balance` is accepted as an alias of the default policy.
        let cmd = parse_args(&argv("serve quick --infer --router wear-balance")).unwrap();
        let Command::Serve { flags, .. } = cmd else { panic!("not serve") };
        assert_eq!(flags.router, RouterPolicy::WearBalance);
        // Fleet flags are serve --infer only.
        let err = parse_args(&argv("serve quick --replicas 2")).unwrap_err();
        assert!(err.contains("--infer"), "got: {err}");
        let err = parse_args(&argv("serve quick --router sticky")).unwrap_err();
        assert!(err.contains("--infer"), "got: {err}");
        let err = parse_args(&argv("scenario quick --replicas 2")).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
        // Bad values.
        let err = parse_args(&argv("serve quick --infer --replicas 0")).unwrap_err();
        assert!(err.contains("at least 1"), "got: {err}");
        assert!(parse_args(&argv("serve quick --infer --replicas abc")).is_err());
        let err = parse_args(&argv("serve quick --infer --router random")).unwrap_err();
        assert!(err.contains("unknown router policy"), "got: {err}");
    }

    #[test]
    fn parses_quantized_flag() {
        let cmd = parse_args(&argv("scenario quick --quantized")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                opts: RunOpts { quantized: true, ..RunOpts::default() },
            }
        );
        // `serve` (both study and --infer) accepts it too.
        assert!(parse_args(&argv("serve quick --quantized")).is_ok());
        assert!(parse_args(&argv("serve quick --infer --quantized")).is_ok());
        // The flag flows into the lifetime config.
        let scenario = configured_scenario("quick", &RunOpts::default());
        assert!(!scenario.framework.lifetime.quantized_eval);
        let opts = RunOpts { quantized: true, ..RunOpts::default() };
        let scenario = configured_scenario("quick", &opts);
        assert!(scenario.framework.lifetime.quantized_eval);
    }

    #[test]
    fn parses_delta_remap_flags() {
        let cmd = parse_args(&argv("scenario quick --delta-remap off")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                opts: RunOpts { delta_remap: false, ..RunOpts::default() },
            }
        );
        let cmd = parse_args(&argv("serve quick --infer --remap-tolerance 0.25")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                name: "quick".into(),
                opts: RunOpts {
                    strategy: StrategyArg::One(Strategy::StAt),
                    remap_tolerance: 0.25,
                    ..RunOpts::default()
                },
                flags: ServeFlags { infer: true, ..ServeFlags::default() },
            }
        );
        // Delta is on by default and an explicit `on` round-trips.
        assert!(RunOpts::default().delta_remap);
        assert!(parse_args(&argv("scenario quick --delta-remap on")).is_ok());
        let err = parse_args(&argv("scenario quick --delta-remap maybe")).unwrap_err();
        assert!(err.contains("bad delta-remap"), "got: {err}");
        let err = parse_args(&argv("scenario quick --remap-tolerance 0.7")).unwrap_err();
        assert!(err.contains("bad remap-tolerance"), "got: {err}");
        let err = parse_args(&argv("scenario quick --remap-tolerance nan")).unwrap_err();
        assert!(err.contains("bad remap-tolerance"), "got: {err}");
        // The flags flow into the lifetime config.
        let opts = RunOpts { delta_remap: false, remap_tolerance: 0.1, ..RunOpts::default() };
        let scenario = configured_scenario("quick", &opts);
        assert!(!scenario.framework.lifetime.delta_remap);
        assert_eq!(scenario.framework.lifetime.remap_tolerance, 0.1);
        let scenario = configured_scenario("quick", &RunOpts::default());
        assert!(scenario.framework.lifetime.delta_remap);
    }

    #[test]
    fn parses_series_flags() {
        let cmd = parse_args(&argv("serve quick --infer --series-capacity 128")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                name: "quick".into(),
                opts: RunOpts {
                    strategy: StrategyArg::One(Strategy::StAt),
                    series_capacity: Some(128),
                    ..RunOpts::default()
                },
                flags: ServeFlags { infer: true, ..ServeFlags::default() },
            }
        );
        // The default attaches a store at the default capacity; --no-series
        // disables retention entirely.
        assert_eq!(RunOpts::default().series(), Some(DEFAULT_SERIES_CAPACITY));
        assert_eq!(RunOpts { no_series: true, ..RunOpts::default() }.series(), None);
        let cmd = parse_args(&argv("scenario quick --no-series")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                opts: RunOpts { no_series: true, ..RunOpts::default() },
            }
        );
        let err = parse_args(&argv("serve quick --series-capacity 1")).unwrap_err();
        assert!(err.contains("at least 2"), "got: {err}");
        let err = parse_args(&argv("serve quick --no-series --series-capacity 8")).unwrap_err();
        assert!(err.contains("conflicts"), "got: {err}");
    }

    #[test]
    fn parses_analyze_command() {
        let cmd = parse_args(&argv("analyze results/run.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                paths: vec!["results/run.jsonl".into()],
                flags: AnalyzeFlags::default(),
            }
        );
        let cmd = parse_args(&argv(
            "analyze a.jsonl b.jsonl --json --tolerance 0.1 --latency-buckets 24 \
             --series-capacity 32 --forecast-window 8",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                paths: vec!["a.jsonl".into(), "b.jsonl".into()],
                flags: AnalyzeFlags {
                    json: true,
                    tolerance: 0.1,
                    options: AnalyzeOptions {
                        latency_buckets: 24,
                        series_capacity: 32,
                        forecast_window: 8,
                        ..AnalyzeOptions::default()
                    },
                },
            }
        );
        assert!(parse_args(&argv("analyze")).is_err());
        let err = parse_args(&argv("analyze a.jsonl b.jsonl c.jsonl")).unwrap_err();
        assert!(err.contains("one trace"), "got: {err}");
        let err = parse_args(&argv("analyze a.jsonl --bogus")).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
        assert!(parse_args(&argv("analyze a.jsonl --tolerance -1")).is_err());
        assert!(parse_args(&argv("analyze a.jsonl --latency-buckets 2")).is_err());
        assert!(parse_args(&argv("analyze a.jsonl --forecast-window 1")).is_err());
    }

    #[test]
    fn analyze_reports_missing_traces_cleanly() {
        let err = run_analyze(&["/nonexistent-dir/run.jsonl".into()], &AnalyzeFlags::default())
            .unwrap_err();
        assert!(err.contains("cannot read trace"), "got: {err}");
    }

    #[test]
    fn serve_only_flags_are_rejected_by_scenario() {
        let err = parse_args(&argv("scenario quick --port 9000")).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
        let err = parse_args(&argv("scenario quick --linger")).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
    }

    #[test]
    fn trace_requires_a_value() {
        let err = parse_args(&argv("scenario quick --trace")).unwrap_err();
        assert!(err.contains("--trace"), "error should name the flag: {err}");
        assert!(err.contains("needs a value"), "got: {err}");
    }

    #[test]
    fn typoed_bare_flag_reports_unknown_not_missing_value() {
        let err = parse_args(&argv("scenario quick --metrcs")).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
    }

    #[test]
    fn unwritable_trace_path_is_a_clean_error() {
        let err =
            build_recorder(Some("/nonexistent-dir/run.jsonl"), None, None, None, None).unwrap_err();
        assert!(err.contains("cannot open trace file"), "got: {err}");
        let err =
            build_recorder(None, Some("/nonexistent-dir/run.json"), None, None, None).unwrap_err();
        assert!(err.contains("cannot open chrome trace file"), "got: {err}");
        let err = build_recorder(None, None, Some("/nonexistent-dir/flight.jsonl"), None, None)
            .unwrap_err();
        assert!(err.contains("cannot open flight-recorder file"), "got: {err}");
    }

    #[test]
    fn defaults_to_all_strategies() {
        let cmd = parse_args(&argv("scenario lenet")).unwrap();
        assert_eq!(cmd, Command::Scenario { name: "lenet".into(), opts: RunOpts::default() });
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("scenario nope")).is_err());
        assert!(parse_args(&argv("scenario quick --strategy bogus")).is_err());
        assert!(parse_args(&argv("scenario quick --seed abc")).is_err());
        assert!(parse_args(&argv("scenario quick --seed")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("scenario")).is_err());
        assert!(parse_args(&argv("serve nope")).is_err());
        assert!(parse_args(&argv("serve quick --port abc")).is_err());
    }

    #[test]
    fn parses_strategy_aliases() {
        assert_eq!(parse_strategy("T+T").unwrap(), StrategyArg::One(Strategy::TT));
        assert_eq!(parse_strategy("st+at").unwrap(), StrategyArg::One(Strategy::StAt));
        assert_eq!(parse_strategy("ALL").unwrap(), StrategyArg::All);
    }

    #[test]
    fn device_and_info_parse() {
        assert_eq!(parse_args(&argv("device")).unwrap(), Command::Device);
        assert_eq!(parse_args(&argv("info")).unwrap(), Command::Info);
    }
}
