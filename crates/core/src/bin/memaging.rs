//! `memaging` — command-line front end for the co-optimization framework.
//!
//! ```text
//! memaging scenario quick --strategy all            # run a lifetime study
//! memaging scenario lenet --strategy stat --seed 3
//! memaging scenario quick --trace run.jsonl --metrics  # structured tracing
//! memaging device                                   # single-cell aging trace
//! memaging info                                     # scenario inventory
//! ```
//!
//! Arguments are deliberately minimal (no CLI dependency): a subcommand,
//! then `--key value` pairs.

use memaging::device::{ArrheniusAging, DeviceSpec, Memristor};
use memaging::lifetime::{compare_lifetimes, Strategy};
use memaging::obs::{JsonlSink, PrettySink, Recorder, Sink};
use memaging::Scenario;

/// Parsed command-line request.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Scenario {
        name: String,
        strategy: StrategyArg,
        seed: Option<u64>,
        sessions: Option<usize>,
        trace: Option<String>,
        metrics: bool,
    },
    Device,
    Info,
    Help,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StrategyArg {
    One(Strategy),
    All,
}

fn parse_strategy(s: &str) -> Result<StrategyArg, String> {
    match s.to_ascii_lowercase().as_str() {
        "tt" | "t+t" => Ok(StrategyArg::One(Strategy::TT)),
        "stt" | "st+t" => Ok(StrategyArg::One(Strategy::StT)),
        "stat" | "st+at" => Ok(StrategyArg::One(Strategy::StAt)),
        "all" => Ok(StrategyArg::All),
        other => Err(format!("unknown strategy `{other}` (expected tt|stt|stat|all)")),
    }
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "device" => Ok(Command::Device),
        "info" => Ok(Command::Info),
        "scenario" => {
            let name = it.next().ok_or("scenario needs a name: quick|lenet|vgg")?.to_string();
            if !["quick", "lenet", "vgg"].contains(&name.as_str()) {
                return Err(format!("unknown scenario `{name}` (expected quick|lenet|vgg)"));
            }
            let mut strategy = StrategyArg::All;
            let mut seed = None;
            let mut sessions = None;
            let mut trace = None;
            let mut metrics = false;
            while let Some(flag) = it.next() {
                // `--metrics` is a bare switch; every other known flag takes
                // a value. Reject unknown flags before demanding one so a
                // typo reports "unknown flag", not "needs a value".
                if flag == "--metrics" {
                    metrics = true;
                    continue;
                }
                if !["--strategy", "--seed", "--sessions", "--trace"].contains(&flag.as_str()) {
                    return Err(format!("unknown flag `{flag}`"));
                }
                let value = it.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
                match flag.as_str() {
                    "--strategy" => strategy = parse_strategy(value)?,
                    "--seed" => {
                        seed = Some(value.parse().map_err(|_| format!("bad seed `{value}`"))?)
                    }
                    "--sessions" => {
                        sessions =
                            Some(value.parse().map_err(|_| format!("bad sessions `{value}`"))?)
                    }
                    "--trace" => trace = Some(value.to_string()),
                    _ => unreachable!("flag validated above"),
                }
            }
            Ok(Command::Scenario { name, strategy, seed, sessions, trace, metrics })
        }
        other => Err(format!("unknown command `{other}`; try `memaging help`")),
    }
}

fn print_help() {
    println!(
        "memaging — aging-aware lifetime enhancement for memristor crossbars (DATE'19)\n\n\
         USAGE:\n\
         \u{20}   memaging scenario <quick|lenet|vgg> [--strategy tt|stt|stat|all]\n\
         \u{20}                                       [--seed N] [--sessions N]\n\
         \u{20}                                       [--trace out.jsonl] [--metrics]\n\
         \u{20}                       --trace writes one JSON event per line (spans,\n\
         \u{20}                       counters, gauges); --metrics prints a metrics\n\
         \u{20}                       summary after the run\n\
         \u{20}   memaging device      single-cell aging trajectory (paper Fig. 4)\n\
         \u{20}   memaging info        list the calibrated scenarios\n\
         \u{20}   memaging help        this message\n"
    );
}

fn scenario_by_name(name: &str) -> Scenario {
    match name {
        "lenet" => Scenario::lenet(),
        "vgg" => Scenario::vgg(),
        _ => Scenario::quick(),
    }
}

/// Build the CLI recorder: a pretty sink for progress lines, plus a JSONL
/// sink when `--trace` was given. Fails cleanly on an unwritable trace path.
fn build_recorder(trace: Option<&str>) -> Result<Recorder, String> {
    let mut sinks: Vec<Box<dyn Sink>> = vec![Box::new(PrettySink::new())];
    if let Some(path) = trace {
        let jsonl =
            JsonlSink::create(path).map_err(|e| format!("cannot open trace file `{path}`: {e}"))?;
        sinks.push(Box::new(jsonl));
    }
    Ok(Recorder::new(sinks))
}

fn run_scenario(
    name: &str,
    strategy: StrategyArg,
    seed: Option<u64>,
    sessions: Option<usize>,
    trace: Option<&str>,
    metrics: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut scenario = scenario_by_name(name);
    if let Some(seed) = seed {
        scenario.seed = seed;
        scenario.framework.lifetime.seed = seed;
    }
    if let Some(sessions) = sessions {
        scenario.framework.lifetime.max_sessions = sessions;
    }
    let recorder = build_recorder(trace)?;
    // The pipeline recorder is only attached when the user opted into
    // observability, so the default CLI output is unchanged.
    if trace.is_some() || metrics {
        scenario.framework.recorder = recorder.clone();
    }
    recorder.message(&format!("scenario: {}", scenario.name));
    let strategies: Vec<Strategy> = match strategy {
        StrategyArg::One(s) => vec![s],
        StrategyArg::All => Strategy::ALL.to_vec(),
    };
    let mut results = Vec::new();
    for s in &strategies {
        let outcome = scenario.run_strategy(*s)?;
        recorder.message(&format!(
            "{:>6}: software acc {:.1}%, {} sessions, {} applications (failed: {})",
            s.label(),
            100.0 * outcome.software_accuracy,
            outcome.lifetime.sessions.len(),
            outcome.lifetime.lifetime_applications,
            outcome.lifetime.failed,
        ));
        results.push(outcome.lifetime);
    }
    if results.len() > 1 {
        let cmp = compare_lifetimes(&results);
        let mut line = String::from("lifetime ratios:");
        for ((s, _), r) in cmp.entries.iter().zip(&cmp.ratios) {
            line.push_str(&format!("  {}={:.1}x", s.label(), r));
        }
        recorder.message(&line);
    }
    if metrics {
        if let Some(snapshot) = recorder.snapshot() {
            print!("{snapshot}");
        }
    }
    recorder.flush();
    Ok(())
}

fn run_device() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DeviceSpec { levels: 8, ..DeviceSpec::default() };
    let mut cell = Memristor::new(spec, ArrheniusAging::default())?;
    println!("{:>10} {:>12} {:>12} {:>8}", "pulses", "R_min [kΩ]", "R_max [kΩ]", "levels");
    loop {
        let w = cell.aged_window();
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>8}",
            cell.pulse_count(),
            w.r_min / 1e3,
            w.r_max / 1e3,
            cell.usable_levels()
        );
        if cell.is_worn_out() {
            break;
        }
        for _ in 0..1000 {
            if cell.program_to_level(0).is_err() || cell.program_to_level(7).is_err() {
                break;
            }
        }
    }
    Ok(())
}

fn run_info() {
    for scenario in [Scenario::quick(), Scenario::lenet(), Scenario::vgg()] {
        println!("{}", scenario.name);
        println!("  model: {}", scenario.framework.model);
        println!(
            "  dataset: {} classes x {} samples, {}x{}x{}",
            scenario.data_spec.classes,
            scenario.data_spec.samples_per_class,
            scenario.data_spec.channels,
            scenario.data_spec.height,
            scenario.data_spec.width,
        );
        println!(
            "  lifetime: target {:.0}%, <= {} sessions, {} tuning iterations",
            100.0 * scenario.framework.lifetime.target_accuracy,
            scenario.framework.lifetime.max_sessions,
            scenario.framework.lifetime.max_tuning_iterations,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => print_help(),
        Ok(Command::Info) => run_info(),
        Ok(Command::Device) => {
            if let Err(e) = run_device() {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Ok(Command::Scenario { name, strategy, seed, sessions, trace, metrics }) => {
            if let Err(e) = run_scenario(&name, strategy, seed, sessions, trace.as_deref(), metrics)
            {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            print_help();
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_help_and_empty() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_scenario_with_flags() {
        let cmd =
            parse_args(&argv("scenario quick --strategy stat --seed 9 --sessions 5")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                strategy: StrategyArg::One(Strategy::StAt),
                seed: Some(9),
                sessions: Some(5),
                trace: None,
                metrics: false,
            }
        );
    }

    #[test]
    fn parses_trace_and_metrics() {
        let cmd =
            parse_args(&argv("scenario quick --trace /tmp/run.jsonl --metrics --seed 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "quick".into(),
                strategy: StrategyArg::All,
                seed: Some(3),
                sessions: None,
                trace: Some("/tmp/run.jsonl".into()),
                metrics: true,
            }
        );
    }

    #[test]
    fn trace_requires_a_value() {
        let err = parse_args(&argv("scenario quick --trace")).unwrap_err();
        assert!(err.contains("--trace"), "error should name the flag: {err}");
        assert!(err.contains("needs a value"), "got: {err}");
    }

    #[test]
    fn typoed_bare_flag_reports_unknown_not_missing_value() {
        let err = parse_args(&argv("scenario quick --metrcs")).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
    }

    #[test]
    fn unwritable_trace_path_is_a_clean_error() {
        let err = build_recorder(Some("/nonexistent-dir/run.jsonl")).unwrap_err();
        assert!(err.contains("cannot open trace file"), "got: {err}");
    }

    #[test]
    fn defaults_to_all_strategies() {
        let cmd = parse_args(&argv("scenario lenet")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                name: "lenet".into(),
                strategy: StrategyArg::All,
                seed: None,
                sessions: None,
                trace: None,
                metrics: false,
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("scenario nope")).is_err());
        assert!(parse_args(&argv("scenario quick --strategy bogus")).is_err());
        assert!(parse_args(&argv("scenario quick --seed abc")).is_err());
        assert!(parse_args(&argv("scenario quick --seed")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("scenario")).is_err());
    }

    #[test]
    fn parses_strategy_aliases() {
        assert_eq!(parse_strategy("T+T").unwrap(), StrategyArg::One(Strategy::TT));
        assert_eq!(parse_strategy("st+at").unwrap(), StrategyArg::One(Strategy::StAt));
        assert_eq!(parse_strategy("ALL").unwrap(), StrategyArg::All);
    }

    #[test]
    fn device_and_info_parse() {
        assert_eq!(parse_args(&argv("device")).unwrap(), Command::Device);
        assert_eq!(parse_args(&argv("info")).unwrap(), Command::Info);
    }
}
