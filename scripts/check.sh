#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   scripts/check.sh            # run everything
#   scripts/check.sh --fix      # apply rustfmt instead of checking
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt
else
    cargo fmt --check
fi
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q

echo "check.sh: all green"
