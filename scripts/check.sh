#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   scripts/check.sh            # run everything
#   scripts/check.sh --fix      # apply rustfmt instead of checking
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt
else
    cargo fmt --check
fi
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q

# Perf-regression gate over the committed phase profile. The self-compare is
# a structural sanity check (the gate must parse the baseline and exit 0);
# when a fresh candidate profile exists (exp_all writes one, or set
# MEMAGING_BENCH_CANDIDATE), diff it against the baseline with a loose
# cross-machine tolerance.
cargo run -q -p memaging-bench --bin bench-diff -- BENCH_obs.json BENCH_obs.json
candidate="${MEMAGING_BENCH_CANDIDATE:-}"
if [[ -n "$candidate" && -f "$candidate" ]]; then
    cargo run -q -p memaging-bench --bin bench-diff -- \
        BENCH_obs.json "$candidate" --tolerance 3.0
fi

# Same gate over the parallel-runtime profile (exp_par writes a fresh one;
# set MEMAGING_BENCH_CANDIDATE_PAR to diff it against the committed
# baseline).
cargo run -q -p memaging-bench --bin bench-diff -- BENCH_par.json BENCH_par.json
candidate_par="${MEMAGING_BENCH_CANDIDATE_PAR:-}"
if [[ -n "$candidate_par" && -f "$candidate_par" ]]; then
    cargo run -q -p memaging-bench --bin bench-diff -- \
        BENCH_par.json "$candidate_par" --tolerance 3.0
fi

# Same gate over the range-selection engine profile (exp_map writes a fresh
# one; set MEMAGING_BENCH_CANDIDATE_MAP to diff it against the committed
# baseline). The committed baseline must carry the quantized-vs-f32
# candidate-scoring speedup — exp_map asserts the >= 2x gate when it runs;
# this keeps the extra from silently vanishing from the baseline.
grep -q '"quant_speedup_candidate"' BENCH_map.json \
    || { echo "check.sh: BENCH_map.json is missing extra \"quant_speedup_candidate\"" >&2; exit 1; }
cargo run -q -p memaging-bench --bin bench-diff -- BENCH_map.json BENCH_map.json
candidate_map="${MEMAGING_BENCH_CANDIDATE_MAP:-}"
if [[ -n "$candidate_map" && -f "$candidate_map" ]]; then
    cargo run -q -p memaging-bench --bin bench-diff -- \
        BENCH_map.json "$candidate_map" --tolerance 3.0
fi

# Same gate over the serving-tier profile (exp_serve writes a fresh one; set
# MEMAGING_BENCH_CANDIDATE_SERVE to diff it against the committed baseline).
# The committed baseline must carry the wear-attribution / latency extras —
# bench-diff fails on drifted or vanished extras, and unlike wall-clock
# times the extras are deterministic (pure FP over a fixed admission
# sequence), so they stay at the strict default tolerance even when the
# timing tolerance is loosened for cross-machine runs.
for key in wear_total_stress wear_inference_read_stress wear_remap_stress \
           wear_ledger_entries latency_e2e_count series_points forecast_tiles \
           forecast_worst_velocity quant_speedup_forward \
           remap_cells_skipped_frac delta_remap_speedup; do
    grep -q "\"$key\"" BENCH_serve.json \
        || { echo "check.sh: BENCH_serve.json is missing extra \"$key\"" >&2; exit 1; }
done
cargo run -q -p memaging-bench --bin bench-diff -- BENCH_serve.json BENCH_serve.json
candidate_serve="${MEMAGING_BENCH_CANDIDATE_SERVE:-}"
if [[ -n "$candidate_serve" && -f "$candidate_serve" ]]; then
    cargo run -q -p memaging-bench --bin bench-diff -- \
        BENCH_serve.json "$candidate_serve" --tolerance 3.0
fi

# Same gate over the replica-fleet profile (exp_fleet writes a fresh one;
# set MEMAGING_BENCH_CANDIDATE_FLEET to diff it against the committed
# baseline). The committed baseline must carry the wear-imbalance gate
# (exp_fleet asserts wear-balancing strictly beats round-robin when it
# runs) and the throughput-scaling extra.
for key in fleet_wear_imbalance fleet_wear_imbalance_round_robin fleet_scaling \
           fleet_retires; do
    grep -q "\"$key\"" BENCH_fleet.json \
        || { echo "check.sh: BENCH_fleet.json is missing extra \"$key\"" >&2; exit 1; }
done
cargo run -q -p memaging-bench --bin bench-diff -- BENCH_fleet.json BENCH_fleet.json
candidate_fleet="${MEMAGING_BENCH_CANDIDATE_FLEET:-}"
if [[ -n "$candidate_fleet" && -f "$candidate_fleet" ]]; then
    cargo run -q -p memaging-bench --bin bench-diff -- \
        BENCH_fleet.json "$candidate_fleet" --tolerance 3.0
fi

# Offline trace analyzer over the committed flight dumps: every committed
# line must parse, and identical dumps must diff clean (exit 0, zero
# regressions) — the analyzer's own regression gate applied to itself.
# The fleet dumps exercise the per-replica folding path.
for dump in results/flight_serve_*.jsonl results/flight_fleet_*.jsonl; do
    cargo run -q -p memaging --bin memaging -- analyze "$dump" > /dev/null
done
cargo run -q -p memaging --bin memaging -- analyze \
    results/flight_serve_1t.jsonl results/flight_serve_1t.jsonl > /dev/null
cargo run -q -p memaging --bin memaging -- analyze \
    results/flight_fleet_r4_1t.jsonl results/flight_fleet_r4_1t.jsonl > /dev/null

echo "check.sh: all green"
